package protocols

import (
	"errors"
	"fmt"
	"io"

	"thetacrypt/internal/dkg"
	"thetacrypt/internal/group"
	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	sharepkg "thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// keygenProtocol runs Pedersen's JF-DKG (internal/dkg) as a TRI
// protocol instance, making key generation an on-demand operation of
// the protocol API: every node broadcasts one dealing (its Feldman
// commitments plus the sub-shares), verifies the dealings of all n
// participants, and finalizes by installing the combined (t, n) key
// into its keystore under the request's key ID. The instance result is
// the key ID, so clients learn the name of the key they created from
// the ordinary result path.
//
// Unlike the threshold operations, key generation involves all n
// parties, and the happy-path qualified-set agreement assumes every
// dealing reaches every node — which the reliable transport provides.
// A dealing whose sub-share fails verification disqualifies that
// dealer on the receiving node; fewer than t+1 qualified dealers abort
// the instance (dkg.ErrTooFewDealers).
//
// The protocol runs in one of two modes, decided by configuration:
//
// Legacy (no identity material): sub-shares travel in the clear inside
// the broadcast dealing, every node verifies all n of them, and the
// instance is single-round.
//
// Sealed (identity-keyed deployments): each dealing carries one ECIES
// box per recipient — sealed to that recipient's identity key and bound
// to (instance, dealer, recipient) — so no sub-share bytes ever appear
// on the wire. Because a node can then verify only its OWN sub-share,
// the DKG grows GJKR-style complaint (round 2) and justification
// (round 3) rounds: a recipient whose box is unopenable or whose share
// fails Feldman verification broadcasts a complaint, the accused dealer
// must broadcast the disputed sub-share, and dealers whose
// justifications do not verify are disqualified deterministically by
// every node. Every node speaks in rounds 2 and 3 (usually with empty
// lists) so round completion is "heard from everyone", same as round 1.
type keygenProtocol struct {
	store  *keys.Keystore
	scheme schemes.ID
	keyID  string
	g      group.Group
	part   *dkg.Participant
	rand   io.Reader

	n, self   int
	processed map[int]bool // dealers whose dealing was consumed (or rejected)
	started   bool
	finalized bool

	// Sealed mode.
	sealed    bool
	id        *identity.Key
	roster    identity.Roster
	instID    string
	round     int          // last round this node broadcast
	heardComp map[int]bool // complaint-round messages consumed
	heardJust map[int]bool // justification-round messages consumed
}

// newKeygen builds the DKG instance for an OpKeyGen request. The
// request payload names the DL group (empty = edwards25519). When env
// carries identity material, the instance runs in sealed mode; the
// roster must then cover the whole deployment, since key generation
// involves all n nodes.
func newKeygen(rand io.Reader, store *keys.Keystore, req Request, env Env) (Protocol, error) {
	if !keys.SupportsDKG(req.Scheme) {
		return nil, fmt.Errorf("%w: scheme %s is deal-only", ErrKeygenUnsupported, req.Scheme)
	}
	g := group.Edwards25519()
	if len(req.Payload) > 0 {
		var err error
		if g, err = group.ByName(string(req.Payload)); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrKeygenUnsupported, err)
		}
	}
	if _, err := store.Get(req.Scheme, req.KeyID); err == nil {
		return nil, fmt.Errorf("%w: %s/%s", keys.ErrKeyExists, req.Scheme, req.KeyID)
	}
	part, err := dkg.NewParticipant(g, store.Index, store.T, store.N)
	if err != nil {
		return nil, fmt.Errorf("protocols keygen: %w", err)
	}
	p := &keygenProtocol{
		store:     store,
		scheme:    req.Scheme,
		keyID:     req.KeyID,
		g:         g,
		part:      part,
		n:         store.N,
		self:      store.Index,
		rand:      rand,
		processed: make(map[int]bool, store.N),
	}
	if env.Identity != nil {
		for j := 1; j <= store.N; j++ {
			if _, err := env.Roster.Lookup(j); err != nil {
				return nil, fmt.Errorf("protocols keygen: sealed dealings need the full roster: %w", err)
			}
		}
		p.sealed = true
		p.id = env.Identity
		p.roster = env.Roster
		p.instID = req.InstanceID()
		p.heardComp = make(map[int]bool, store.N)
		p.heardJust = make(map[int]bool, store.N)
	}
	return p, nil
}

func (p *keygenProtocol) DoRound() (*RoundOutput, error) {
	if p.finalized {
		return nil, ErrAlreadyFinalized
	}
	if !p.sealed {
		if p.started {
			return nil, nil // single-round: nothing to do later
		}
		p.started = true
		dealing, err := p.part.Deal(p.rand)
		if err != nil {
			return nil, fmt.Errorf("keygen deal: %w", err)
		}
		p.processed[p.self] = true // Deal self-accounts commitment and sub-share
		return &RoundOutput{Round: 1, Transport: TransportP2P, Payload: marshalDealing(dealing)}, nil
	}
	switch p.round {
	case 0:
		p.started = true
		p.round = 1
		dealing, err := p.part.Deal(p.rand)
		if err != nil {
			return nil, fmt.Errorf("keygen deal: %w", err)
		}
		if TestFaultDealing != nil {
			TestFaultDealing(p.self, dealing)
		}
		p.processed[p.self] = true
		recipients := make([]int, p.n)
		for j := range recipients {
			recipients[j] = j + 1
		}
		boxes, err := sealSubShares(p.rand, p.id, p.roster, "dkg", p.instID, dealing.SubShares, recipients)
		if err != nil {
			return nil, fmt.Errorf("keygen seal: %w", err)
		}
		return &RoundOutput{Round: 1, Transport: TransportP2P,
			Payload: marshalSealedDealing(dealing.Commitment.Points, boxes)}, nil
	case 1:
		// All dealings heard: broadcast complaints (usually none).
		p.round = 2
		p.heardComp[p.self] = true
		return &RoundOutput{Round: 2, Transport: TransportP2P,
			Payload: marshalComplaints(p.part.PendingComplaints())}, nil
	case 2:
		// All complaints heard: answer the ones against us, and process
		// our own justifications locally so our complaint ledger matches
		// our peers' — a dealer that cannot justify disqualifies ITSELF
		// the same way everyone else disqualifies it.
		p.round = 3
		p.heardJust[p.self] = true
		js := p.part.JustificationShares()
		for _, s := range js {
			_ = p.part.ReceiveJustification(p.self, s)
		}
		return &RoundOutput{Round: 3, Transport: TransportP2P,
			Payload: marshalJustifications(js)}, nil
	default:
		return nil, nil
	}
}

func (p *keygenProtocol) Update(msg ProtocolMessage) error {
	if p.sealed {
		return p.updateSealed(msg)
	}
	if p.finalized || p.processed[msg.Sender] {
		return nil // late or redelivered dealing
	}
	com, subs, err := unmarshalDealing(p.g, p.n, msg.Payload)
	if err != nil {
		return fmt.Errorf("%w: dealing from %d: %v", ErrShareRejected, msg.Sender, err)
	}
	// The dealing counts as processed even when it disqualifies its
	// dealer: readiness is "heard from everyone", qualification is
	// decided at finalization.
	p.processed[msg.Sender] = true
	// All n sub-shares travel in the broadcast, so every node verifies
	// every one of them — not just its own — before accepting the
	// dealing. A dealer whose dealing is invalid for ANY recipient is
	// excluded identically on all honest nodes, keeping the qualified
	// set (and therefore the installed key) deterministic.
	for _, s := range subs {
		if !com.VerifyShare(s) {
			return fmt.Errorf("%w: dealer %d sent an invalid sub-share for party %d",
				ErrShareRejected, msg.Sender, s.Index)
		}
	}
	if err := p.part.ReceiveCommitment(&dkg.PublicDealing{Dealer: msg.Sender, Commitment: com}); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if err := p.part.ReceiveSubShare(msg.Sender, subs[p.self-1]); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	return nil
}

// updateSealed consumes one sealed-mode broadcast, dispatched on its
// round: a dealing, a complaint list, or a justification list.
// Publicly-checkable misbehavior (garbled broadcasts, wrong-degree
// commitments) excludes the sender immediately and identically on all
// nodes; privately-detected failures (our box, our share) only record a
// complaint — the verdict waits for the justification round.
func (p *keygenProtocol) updateSealed(msg ProtocolMessage) error {
	if p.finalized {
		return nil
	}
	if msg.Sender < 1 || msg.Sender > p.n {
		return fmt.Errorf("%w: keygen message from out-of-range node %d", ErrShareRejected, msg.Sender)
	}
	switch msg.Round {
	case 1:
		if p.processed[msg.Sender] {
			return nil
		}
		p.processed[msg.Sender] = true
		com, boxes, err := unmarshalSealedDealing(p.g, p.n, msg.Payload)
		if err != nil {
			p.part.Exclude(msg.Sender)
			return fmt.Errorf("%w: sealed dealing from %d: %v", ErrShareRejected, msg.Sender, err)
		}
		if err := p.part.ReceiveCommitment(&dkg.PublicDealing{Dealer: msg.Sender, Commitment: com}); err != nil {
			return fmt.Errorf("%w: %v", ErrShareRejected, err)
		}
		pt, err := p.id.Open(boxContext("dkg", p.instID, msg.Sender, p.self), boxes[p.self-1])
		if err != nil {
			p.part.Complain(msg.Sender)
			return fmt.Errorf("%w: dealer %d box for party %d does not open", ErrShareRejected, msg.Sender, p.self)
		}
		s, err := unmarshalSubShare(pt)
		if err != nil || s.Index != p.self {
			p.part.Complain(msg.Sender)
			return fmt.Errorf("%w: dealer %d sealed a malformed sub-share for party %d", ErrShareRejected, msg.Sender, p.self)
		}
		if err := p.part.ReceiveSubShare(msg.Sender, s); err != nil {
			return fmt.Errorf("%w: %v", ErrShareRejected, err)
		}
		return nil
	case 2:
		if p.heardComp[msg.Sender] {
			return nil
		}
		p.heardComp[msg.Sender] = true
		dealers, err := unmarshalComplaints(msg.Payload, p.n)
		if err != nil {
			p.part.Exclude(msg.Sender)
			return fmt.Errorf("%w: complaint list from %d: %v", ErrShareRejected, msg.Sender, err)
		}
		for _, d := range dealers {
			_ = p.part.ReceiveComplaint(msg.Sender, d)
		}
		return nil
	case 3:
		if p.heardJust[msg.Sender] {
			return nil
		}
		p.heardJust[msg.Sender] = true
		js, err := unmarshalJustifications(msg.Payload, p.n)
		if err != nil {
			p.part.Exclude(msg.Sender)
			return fmt.Errorf("%w: justification list from %d: %v", ErrShareRejected, msg.Sender, err)
		}
		// An invalid justification is simply not recorded: the complaint
		// it should have answered stands, and FinishComplaints settles it.
		for _, s := range js {
			_ = p.part.ReceiveJustification(msg.Sender, s)
		}
		return nil
	default:
		return fmt.Errorf("%w: keygen round %d from %d", ErrShareRejected, msg.Round, msg.Sender)
	}
}

func (p *keygenProtocol) IsReadyForNextRound() bool {
	if !p.sealed || p.finalized {
		return false
	}
	switch p.round {
	case 1:
		return len(p.processed) == p.n
	case 2:
		return len(p.heardComp) == p.n
	default:
		return false
	}
}

func (p *keygenProtocol) IsReadyToFinalize() bool {
	if p.sealed {
		return p.round == 3 && !p.finalized && len(p.heardJust) == p.n
	}
	return p.started && !p.finalized && len(p.processed) == p.n
}

func (p *keygenProtocol) Finalize() ([]byte, error) {
	if !p.IsReadyToFinalize() {
		return nil, ErrNotReady
	}
	if p.sealed {
		// Complaints and justifications were all broadcast, so every
		// node settles the same exclusion set here.
		p.part.FinishComplaints()
	}
	res, err := p.part.Finalize()
	if err != nil {
		return nil, fmt.Errorf("keygen: %w", err)
	}
	key := &keys.Key{ID: p.keyID, Scheme: p.scheme, Epoch: keys.FirstEpoch}
	switch p.scheme {
	case schemes.SG02:
		key.Public = &sg02.PublicKey{Group: p.g, H: res.PublicKey, VK: res.VK, T: p.store.T, N: p.n}
		key.Share = sg02.KeyShare{Index: res.Index, X: res.Share}
	case schemes.KG20:
		key.Public = &frost.PublicKey{Group: p.g, Y: res.PublicKey, VK: res.VK, T: p.store.T, N: p.n}
		key.Share = frost.KeyShare{Index: res.Index, X: res.Share}
	case schemes.CKS05:
		key.Public = &cks05.PublicKey{Group: p.g, Y: res.PublicKey, VK: res.VK, T: p.store.T, N: p.n}
		key.Share = cks05.KeyShare{Index: res.Index, X: res.Share}
	default:
		return nil, fmt.Errorf("%w: scheme %s", ErrKeygenUnsupported, p.scheme)
	}
	if err := p.store.Add(key); err != nil {
		// A concurrent generation won the (scheme, id) slot.
		if errors.Is(err, keys.ErrKeyExists) {
			return nil, err
		}
		return nil, fmt.Errorf("keygen install: %w", err)
	}
	p.finalized = true
	return []byte(p.keyID), nil
}

// marshalDealing encodes one dealer's broadcast: the t+1 Feldman
// commitment points and the n sub-shares.
func marshalDealing(d *dkg.Dealing) []byte {
	w := wire.NewWriter()
	w.Int(len(d.Commitment.Points))
	for _, pt := range d.Commitment.Points {
		w.Bytes(pt.Marshal())
	}
	w.Int(len(d.SubShares))
	for _, s := range d.SubShares {
		w.Int(s.Index)
		w.BigInt(s.Value)
	}
	return w.Out()
}

// unmarshalDealing decodes a dealer's broadcast; n bounds the expected
// sub-share count.
func unmarshalDealing(g group.Group, n int, data []byte) (*sharepkg.FeldmanCommitment, []sharepkg.Share, error) {
	r := wire.NewReader(data)
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if cnt < 1 || cnt > n+1 {
		return nil, nil, fmt.Errorf("dealing with %d commitment points", cnt)
	}
	pts := make([]group.Point, cnt)
	for i := 0; i < cnt; i++ {
		raw := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
		pt, err := g.UnmarshalPoint(raw)
		if err != nil {
			return nil, nil, err
		}
		pts[i] = pt
	}
	scnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if scnt != n {
		return nil, nil, fmt.Errorf("dealing with %d sub-shares for %d parties", scnt, n)
	}
	subs := make([]sharepkg.Share, scnt)
	for i := 0; i < scnt; i++ {
		subs[i] = sharepkg.Share{Index: r.Int(), Value: r.BigInt()}
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	for i, s := range subs {
		if s.Index != i+1 || s.Value == nil {
			return nil, nil, fmt.Errorf("dealing sub-share %d malformed", i)
		}
	}
	return &sharepkg.FeldmanCommitment{Group: g, Points: pts}, subs, nil
}
