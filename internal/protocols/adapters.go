package protocols

import (
	"fmt"
	"io"

	"thetacrypt/internal/identity"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/precompute"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
	"thetacrypt/internal/share"
)

// Env carries the engine-owned cross-instance facilities into a
// protocol instance: the precompute suite (coefficient cache, batch
// verifier, nonce pool) and whether this node initiated the request
// locally (a submission, as opposed to joining a peer's announcement).
// The zero Env disables all of it — New uses it, so existing callers
// get today's behavior unchanged.
type Env struct {
	Suite     *precompute.Suite
	Initiator bool
	// InitiatorNode is the mesh node index that initiated the instance:
	// the local node for a submission, the start announcement's sender
	// when joining a peer's run, 0 when unknown (zero Env). FROST uses
	// it to decide whether the initiator can open a pooled single-round
	// run at all — an initiator outside the fixed signer group never
	// can, so the signers must start the fresh path spontaneously
	// instead of deferring on a pooled start that will never come.
	InitiatorNode int
	// Identity and Roster carry the node's transport identity key and
	// the deployment's peer roster into the DKG and reshare protocols:
	// when present, sub-shares travel as per-recipient sealed boxes and
	// the instances run GJKR-style complaint/justification rounds. Nil
	// Identity keeps the legacy cleartext dealings. All nodes of a
	// deployment must agree on the mode — it changes the dealing wire
	// format.
	Identity *identity.Key
	Roster   identity.Roster
}

// New instantiates the TRI protocol for a request, resolving the share
// material by (scheme, key ID) in the node's keystore. It is the
// factory the orchestration executor calls for every new instance. A
// missing key surfaces as keys.ErrKeyUnknown (the service layer's
// key_unknown), a pinned epoch that is not the key's current one as
// keys.ErrKeyEpoch, and an operation needing share material on a node
// outside the key's committee as keys.ErrKeyNoShare. OpKeyGen requests
// build the DKG protocol instead of a lookup; OpReshare builds the
// resharing protocol on every node holding at least the public half.
// When the key's committee is not the identity mapping, the protocol
// is wrapped so mesh sender indices translate to committee share
// indices before the scheme sees them.
func New(rand io.Reader, store *keys.Keystore, req Request) (Protocol, error) {
	return NewWith(rand, store, req, Env{})
}

// NewWith is New threading the engine environment into the instance:
// the precompute suite serves cached Lagrange coefficients, batches
// share verification, and — for KG20 with a warm nonce pool — turns the
// initiator's signing path into a single round.
func NewWith(rand io.Reader, store *keys.Keystore, req Request, env Env) (Protocol, error) {
	if req.Op == OpKeyGen {
		return newKeygen(rand, store, req, env)
	}
	k, err := checkedKey(store, req)
	if err != nil {
		return nil, err
	}
	if req.Op == OpReshare {
		// Reshares translate senders themselves (dealers are OLD
		// members; the wrapper maps to the new committee).
		return newReshare(rand, store, k, req, env)
	}
	if req.Op == OpPoolRefill {
		// Refills run on every committee node, signer or not (public
		// material suffices to observe commitments).
		p, err := newPoolRefill(rand, k, req, env, k.MemberIndex(store.Index))
		if err != nil {
			return nil, err
		}
		return mapSenders(p, k), nil
	}
	if k.Share == nil {
		return nil, fmt.Errorf("protocols: %w: %s/%s on node %d",
			keys.ErrKeyNoShare, req.Scheme, k.ID, store.Index)
	}
	p, err := buildOp(rand, k, req, env)
	if err != nil {
		return nil, err
	}
	return mapSenders(p, k), nil
}

// buildOp constructs the scheme protocol for a sign/decrypt/coin
// request from resolved key material.
func buildOp(rand io.Reader, k *keys.Key, req Request, env Env) (Protocol, error) {
	// The coefficient source is scoped to this key's epoch: a reshare
	// changes the epoch and with it every cache key, so stale
	// coefficients are structurally unreachable.
	src := env.Suite.Coefficients(string(k.Scheme), k.ID, k.Epoch)
	batch := env.Suite.Verifier()
	switch {
	case req.Scheme == schemes.SG02 && req.Op == OpDecrypt:
		pk, ks, err := material[*sg02.PublicKey, sg02.KeyShare](k)
		if err != nil {
			return nil, err
		}
		ct, err := sg02.UnmarshalCiphertext(pk.Group, req.Payload)
		if err != nil {
			return nil, fmt.Errorf("protocols: %w", err)
		}
		return newNonInteractive(rand, &sg02Adapter{pk: pk, ks: ks, ct: ct,
			src: src, batch: batch,
			shares: make(map[int]*sg02.DecShare)}), nil

	case req.Scheme == schemes.BZ03 && req.Op == OpDecrypt:
		pk, ks, err := material[*bz03.PublicKey, bz03.KeyShare](k)
		if err != nil {
			return nil, err
		}
		ct, err := bz03.UnmarshalCiphertext(req.Payload)
		if err != nil {
			return nil, fmt.Errorf("protocols: %w", err)
		}
		return newNonInteractive(rand, &bz03Adapter{pk: pk, ks: ks, ct: ct,
			shares: make(map[int]*bz03.DecShare)}), nil

	case req.Scheme == schemes.SH00 && req.Op == OpSign:
		pk, ks, err := material[*sh00.PublicKey, sh00.KeyShare](k)
		if err != nil {
			return nil, err
		}
		return newNonInteractive(rand, &sh00Adapter{pk: pk, ks: ks, msg: req.Payload,
			shares: make(map[int]*sh00.SigShare)}), nil

	case req.Scheme == schemes.BLS04 && req.Op == OpSign:
		pk, ks, err := material[*bls04.PublicKey, bls04.KeyShare](k)
		if err != nil {
			return nil, err
		}
		return newNonInteractive(rand, &bls04Adapter{pk: pk, ks: ks, msg: req.Payload,
			src:    src,
			shares: make(map[int]*bls04.SigShare)}), nil

	case req.Scheme == schemes.CKS05 && req.Op == OpCoin:
		pk, ks, err := material[*cks05.PublicKey, cks05.KeyShare](k)
		if err != nil {
			return nil, err
		}
		return newNonInteractive(rand, &cks05Adapter{pk: pk, ks: ks, name: req.Payload,
			src: src, batch: batch,
			shares: make(map[int]*cks05.CoinShare)}), nil

	case req.Scheme == schemes.KG20 && req.Op == OpSign:
		pk, ks, err := material[*frost.PublicKey, frost.KeyShare](k)
		if err != nil {
			return nil, err
		}
		return newFrostWith(rand, pk, ks, req.Payload, frostEnv{
			src: src, batch: batch,
			pool:   env.Suite.NoncePool(),
			scheme: string(k.Scheme), keyID: k.ID, epoch: k.Epoch,
			initiator: env.Initiator,
			// 0 when the initiator is not a committee member (it then
			// holds no share, let alone a banked nonce).
			initiatorShare: k.MemberIndex(env.InitiatorNode),
		}), nil

	default:
		return nil, fmt.Errorf("protocols: scheme %q does not support operation %q", req.Scheme, req.Op)
	}
}

// checkedKey resolves the request's key and enforces the epoch pin:
// a request carrying Epoch > 0 must name the key's current epoch, so
// an old-epoch submission can never seed (or join) a new-epoch quorum.
// Reshares pin strictly — even epoch zero — because all participants
// of one instance must deal from the same sharing.
func checkedKey(store *keys.Keystore, req Request) (*keys.Key, error) {
	k, err := store.Get(req.Scheme, req.EffectiveKeyID())
	if err != nil {
		return nil, fmt.Errorf("protocols: %w", err)
	}
	if (req.Epoch > 0 || req.Op == OpReshare) && k.Epoch != req.Epoch {
		return nil, fmt.Errorf("protocols: %w: %s/%s is at epoch %d, request pinned to %d",
			keys.ErrKeyEpoch, req.Scheme, k.ID, k.Epoch, req.Epoch)
	}
	return k, nil
}

// material type-asserts a key's public and share halves (the
// executor's per-instance hot path).
func material[P any, S any](k *keys.Key) (P, S, error) {
	var (
		zeroP P
		zeroS S
	)
	p, ok := k.Public.(P)
	if !ok {
		return zeroP, zeroS, fmt.Errorf("protocols: key %s/%s public material is %T", k.Scheme, k.ID, k.Public)
	}
	s, ok := k.Share.(S)
	if !ok {
		return zeroP, zeroS, fmt.Errorf("protocols: key %s/%s share material is %T", k.Scheme, k.ID, k.Share)
	}
	return p, s, nil
}

// senderMapped translates mesh sender indices into committee share
// indices before the wrapped protocol sees them. The scheme adapters
// (and FROST) check that a share's index equals its sender, which
// holds for dealt keys where node i holds share i — after a
// membership-changing reshare the committee is an arbitrary node
// subset, and this wrapper restores the invariant without touching
// any scheme code.
type senderMapped struct {
	Protocol
	toShare map[int]int // mesh node index -> committee share index
}

func (p *senderMapped) Update(msg ProtocolMessage) error {
	idx, ok := p.toShare[msg.Sender]
	if !ok {
		return fmt.Errorf("%w: node %d is not a committee member", ErrShareRejected, msg.Sender)
	}
	msg.Sender = idx
	return p.Protocol.Update(msg)
}

// mapSenders wraps p when the key's committee departs from the
// identity mapping.
func mapSenders(p Protocol, k *keys.Key) Protocol {
	if k.Members == nil {
		return p
	}
	m := make(map[int]int, len(k.Members))
	for j, node := range k.Members {
		m[node] = j + 1
	}
	return &senderMapped{Protocol: p, toShare: m}
}

// sg02Adapter plugs the SG02 threshold cipher into the single-round
// protocol.
type sg02Adapter struct {
	pk     *sg02.PublicKey
	ks     sg02.KeyShare
	ct     *sg02.Ciphertext
	src    share.CoefficientSource
	batch  *precompute.BatchVerifier
	shares map[int]*sg02.DecShare
}

func (a *sg02Adapter) CreateShare(rand io.Reader) (int, []byte, error) {
	ds, err := sg02.DecryptShare(rand, a.pk, a.ks, a.ct)
	if err != nil {
		return 0, nil, err
	}
	return a.ks.Index, ds.Marshal(), nil
}

func (a *sg02Adapter) OnShare(sender int, payload []byte) error {
	ds, err := sg02.UnmarshalDecShare(a.pk.Group, payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if ds.Index != sender {
		return fmt.Errorf("%w: share index %d from sender %d", ErrShareRejected, ds.Index, sender)
	}
	// The cheap structural work runs eagerly; the point equations join
	// the engine's shared verification batch (or run directly when no
	// batch verifier is threaded in). A failed batch replays items
	// individually, so this share's verdict stays its own.
	rels, err := sg02.ShareRelations(a.pk, a.ct, ds)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if err := a.batch.Verify(a.pk.Group, rels); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, sg02.ErrInvalidShare)
	}
	a.shares[ds.Index] = ds
	return nil
}

func (a *sg02Adapter) Ready() bool { return len(a.shares) >= a.pk.T+1 }

func (a *sg02Adapter) Combine() ([]byte, error) {
	dss := make([]*sg02.DecShare, 0, len(a.shares))
	for _, ds := range a.shares {
		dss = append(dss, ds)
	}
	return sg02.CombineWith(a.src, a.pk, a.ct, dss)
}

// bz03Adapter plugs the BZ03 threshold cipher into the single-round
// protocol.
type bz03Adapter struct {
	pk     *bz03.PublicKey
	ks     bz03.KeyShare
	ct     *bz03.Ciphertext
	shares map[int]*bz03.DecShare
}

func (a *bz03Adapter) CreateShare(rand io.Reader) (int, []byte, error) {
	ds, err := bz03.DecryptShare(a.pk, a.ks, a.ct)
	if err != nil {
		return 0, nil, err
	}
	return a.ks.Index, ds.Marshal(), nil
}

func (a *bz03Adapter) OnShare(sender int, payload []byte) error {
	ds, err := bz03.UnmarshalDecShare(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if ds.Index != sender {
		return fmt.Errorf("%w: share index %d from sender %d", ErrShareRejected, ds.Index, sender)
	}
	if err := bz03.VerifyShare(a.pk, a.ct, ds); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	a.shares[ds.Index] = ds
	return nil
}

func (a *bz03Adapter) Ready() bool { return len(a.shares) >= a.pk.T+1 }

func (a *bz03Adapter) Combine() ([]byte, error) {
	dss := make([]*bz03.DecShare, 0, len(a.shares))
	for _, ds := range a.shares {
		dss = append(dss, ds)
	}
	return bz03.Combine(a.pk, a.ct, dss)
}

// sh00Adapter plugs the SH00 threshold RSA signature into the
// single-round protocol.
type sh00Adapter struct {
	pk     *sh00.PublicKey
	ks     sh00.KeyShare
	msg    []byte
	shares map[int]*sh00.SigShare
}

func (a *sh00Adapter) CreateShare(rand io.Reader) (int, []byte, error) {
	ss, err := sh00.SignShare(rand, a.pk, a.ks, a.msg)
	if err != nil {
		return 0, nil, err
	}
	return a.ks.Index, ss.Marshal(), nil
}

func (a *sh00Adapter) OnShare(sender int, payload []byte) error {
	ss, err := sh00.UnmarshalSigShare(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if ss.Index != sender {
		return fmt.Errorf("%w: share index %d from sender %d", ErrShareRejected, ss.Index, sender)
	}
	if err := sh00.VerifyShare(a.pk, a.msg, ss); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	a.shares[ss.Index] = ss
	return nil
}

func (a *sh00Adapter) Ready() bool { return len(a.shares) >= a.pk.T+1 }

func (a *sh00Adapter) Combine() ([]byte, error) {
	sss := make([]*sh00.SigShare, 0, len(a.shares))
	for _, ss := range a.shares {
		sss = append(sss, ss)
	}
	sig, err := sh00.Combine(a.pk, a.msg, sss)
	if err != nil {
		return nil, err
	}
	return sig.Marshal(), nil
}

// bls04Adapter plugs the BLS threshold signature into the single-round
// protocol.
type bls04Adapter struct {
	pk     *bls04.PublicKey
	ks     bls04.KeyShare
	msg    []byte
	src    share.CoefficientSource
	shares map[int]*bls04.SigShare
}

func (a *bls04Adapter) CreateShare(io.Reader) (int, []byte, error) {
	return a.ks.Index, bls04.SignShare(a.ks, a.msg).Marshal(), nil
}

func (a *bls04Adapter) OnShare(sender int, payload []byte) error {
	ss, err := bls04.UnmarshalSigShare(payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if ss.Index != sender {
		return fmt.Errorf("%w: share index %d from sender %d", ErrShareRejected, ss.Index, sender)
	}
	if err := bls04.VerifyShare(a.pk, a.msg, ss); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	a.shares[ss.Index] = ss
	return nil
}

func (a *bls04Adapter) Ready() bool { return len(a.shares) >= a.pk.T+1 }

func (a *bls04Adapter) Combine() ([]byte, error) {
	sss := make([]*bls04.SigShare, 0, len(a.shares))
	for _, ss := range a.shares {
		sss = append(sss, ss)
	}
	sig, err := bls04.CombineWith(a.src, a.pk, a.msg, sss)
	if err != nil {
		return nil, err
	}
	return sig.Marshal(), nil
}

// cks05Adapter plugs the CKS05 coin into the single-round protocol.
type cks05Adapter struct {
	pk     *cks05.PublicKey
	ks     cks05.KeyShare
	name   []byte
	src    share.CoefficientSource
	batch  *precompute.BatchVerifier
	shares map[int]*cks05.CoinShare
}

func (a *cks05Adapter) CreateShare(rand io.Reader) (int, []byte, error) {
	cs, err := cks05.Share(rand, a.pk, a.ks, a.name)
	if err != nil {
		return 0, nil, err
	}
	return a.ks.Index, cs.Marshal(), nil
}

func (a *cks05Adapter) OnShare(sender int, payload []byte) error {
	cs, err := cks05.UnmarshalCoinShare(a.pk.Group, payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if cs.Index != sender {
		return fmt.Errorf("%w: share index %d from sender %d", ErrShareRejected, cs.Index, sender)
	}
	rels, err := cks05.ShareRelations(a.pk, a.name, cs)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, err)
	}
	if err := a.batch.Verify(a.pk.Group, rels); err != nil {
		return fmt.Errorf("%w: %v", ErrShareRejected, cks05.ErrInvalidShare)
	}
	a.shares[cs.Index] = cs
	return nil
}

func (a *cks05Adapter) Ready() bool { return len(a.shares) >= a.pk.T+1 }

func (a *cks05Adapter) Combine() ([]byte, error) {
	css := make([]*cks05.CoinShare, 0, len(a.shares))
	for _, cs := range a.shares {
		css = append(css, cs)
	}
	return cks05.CombineWith(a.src, a.pk, a.name, css)
}
