package protocols

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/sg02"
	sharepkg "thetacrypt/internal/share"
)

// driveNodes runs TRI instances keyed by their REAL mesh node index —
// unlike drive, which numbers senders by slice position — so protocols
// that translate mesh senders into committee share indices (reshared
// keys with explicit members) see the envelopes a real transport would
// deliver.
func driveNodes(t *testing.T, protos map[int]Protocol) map[int][]byte {
	t.Helper()
	type pending struct {
		sender int
		out    *RoundOutput
	}
	var queue []pending
	for idx, p := range protos {
		out, err := p.DoRound()
		if err != nil {
			t.Fatalf("node %d DoRound: %v", idx, err)
		}
		if out != nil {
			queue = append(queue, pending{sender: idx, out: out})
		}
	}
	results := make(map[int][]byte)
	for steps := 0; steps < 10000; steps++ {
		if len(results) == len(protos) {
			return results
		}
		if len(queue) == 0 {
			t.Fatal("deadlock: no messages in flight and not all finalized")
		}
		msg := queue[0]
		queue = queue[1:]
		for idx, p := range protos {
			if idx == msg.sender || results[idx] != nil {
				continue
			}
			err := p.Update(ProtocolMessage{Sender: msg.sender, Round: msg.out.Round, Payload: msg.out.Payload})
			if err != nil && !errors.Is(err, ErrShareRejected) {
				t.Fatalf("node %d update: %v", idx, err)
			}
			for p.IsReadyForNextRound() {
				out, err := p.DoRound()
				if err != nil {
					t.Fatalf("node %d DoRound: %v", idx, err)
				}
				if out != nil {
					queue = append(queue, pending{sender: idx, out: out})
				}
			}
			if p.IsReadyToFinalize() {
				val, err := p.Finalize()
				if err != nil {
					t.Fatalf("node %d finalize: %v", idx, err)
				}
				results[idx] = val
			}
		}
	}
	t.Fatal("driveNodes did not converge")
	return nil
}

func identitySpec(t, n int) ReshareSpec {
	members := make([]int, n)
	for i := range members {
		members[i] = i + 1
	}
	return ReshareSpec{NewT: t, Members: members}
}

// TestReshareRefreshAdvancesEpoch runs a same-committee proactive
// refresh and checks the lifecycle contract: every node lands at epoch
// 2 with a DIFFERENT share scalar, the public key is untouched, and a
// ciphertext from epoch 1 still decrypts under the refreshed shares.
func TestReshareRefreshAdvancesEpoch(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.SG02)
	pk := keys.MustPublic[*sg02.PublicKey](nodes[0], schemes.SG02)
	msg := []byte("sealed before the refresh")
	ct, err := sg02.Encrypt(rand.Reader, pk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	oldShares := make(map[int]*big.Int)
	for i, nk := range nodes {
		oldShares[i+1] = keys.MustShare[sg02.KeyShare](nk, schemes.SG02).X
	}

	req := Request{Scheme: schemes.SG02, Op: OpReshare,
		Payload: identitySpec(1, 4).Marshal(), Epoch: keys.FirstEpoch}
	protos := make(map[int]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, req)
		if err != nil {
			t.Fatal(err)
		}
		protos[i+1] = p
	}
	for idx, val := range driveNodes(t, protos) {
		if string(val) != "2" {
			t.Fatalf("node %d reshare result %q, want \"2\"", idx, val)
		}
	}
	for i, nk := range nodes {
		k, err := nk.Get(schemes.SG02, "")
		if err != nil {
			t.Fatal(err)
		}
		if k.Epoch != 2 {
			t.Fatalf("node %d at epoch %d after refresh", i+1, k.Epoch)
		}
		share := k.Share.(sg02.KeyShare)
		if share.Index != i+1 {
			t.Fatalf("node %d share index moved to %d in a same-committee refresh", i+1, share.Index)
		}
		if share.X.Cmp(oldShares[i+1]) == 0 {
			t.Fatalf("node %d share unchanged: the refresh did not re-randomize", i+1)
		}
		if !keys.MustPublic[*sg02.PublicKey](nk, schemes.SG02).H.Equal(pk.H) {
			t.Fatalf("node %d public key changed across the refresh", i+1)
		}
	}

	// The epoch-1 ciphertext decrypts under the epoch-2 shares.
	dec := Request{Scheme: schemes.SG02, Op: OpDecrypt, Payload: ct.Marshal()}
	decProtos := make(map[int]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, dec)
		if err != nil {
			t.Fatal(err)
		}
		decProtos[i+1] = p
	}
	for idx, val := range driveNodes(t, decProtos) {
		if string(val) != string(msg) {
			t.Fatalf("node %d decrypted %q after refresh", idx, val)
		}
	}
}

// TestReshareMembershipChange moves the default SG02 key from the
// identity committee of 4 onto nodes {2, 3, 4}: the leaving node keeps
// a public-only record (typed no-share failures), the new committee
// holds compacted share indices, and decryption works among the new
// members with mesh senders translated to committee indices.
func TestReshareMembershipChange(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.SG02)
	pk := keys.MustPublic[*sg02.PublicKey](nodes[0], schemes.SG02)
	msg := []byte("survives the committee change")
	ct, err := sg02.Encrypt(rand.Reader, pk, msg, nil)
	if err != nil {
		t.Fatal(err)
	}

	spec := ReshareSpec{NewT: 1, Members: []int{2, 3, 4}}
	req := Request{Scheme: schemes.SG02, Op: OpReshare, Payload: spec.Marshal(), Epoch: keys.FirstEpoch}
	protos := make(map[int]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, req)
		if err != nil {
			t.Fatal(err)
		}
		protos[i+1] = p
	}
	driveNodes(t, protos)

	// Node 1 left: public record at epoch 2, no share, typed failure on
	// quorum operations.
	k1, err := nodes[0].Get(schemes.SG02, "")
	if err != nil {
		t.Fatal(err)
	}
	if k1.Epoch != 2 || k1.Share != nil {
		t.Fatalf("leaving node kept epoch=%d share=%v", k1.Epoch, k1.Share)
	}
	dec := Request{Scheme: schemes.SG02, Op: OpDecrypt, Payload: ct.Marshal()}
	if _, err := New(rand.Reader, nodes[0], dec); !errors.Is(err, keys.ErrKeyNoShare) {
		t.Fatalf("decrypt on leaving node = %v, want ErrKeyNoShare", err)
	}

	// The new committee holds compacted indices 1..3 in member order.
	for pos, nodeIdx := range spec.Members {
		k, err := nodes[nodeIdx-1].Get(schemes.SG02, "")
		if err != nil {
			t.Fatal(err)
		}
		share := k.Share.(sg02.KeyShare)
		if share.Index != pos+1 {
			t.Fatalf("node %d holds share index %d, want %d", nodeIdx, share.Index, pos+1)
		}
		if tt, nn := k.Params(); tt != 1 || nn != 3 {
			t.Fatalf("node %d sees params (t=%d, n=%d), want (1, 3)", nodeIdx, tt, nn)
		}
	}

	// Decryption among the new members, with real mesh sender indices.
	decProtos := make(map[int]Protocol, len(spec.Members))
	for _, nodeIdx := range spec.Members {
		p, err := New(rand.Reader, nodes[nodeIdx-1], dec)
		if err != nil {
			t.Fatal(err)
		}
		decProtos[nodeIdx] = p
	}
	for idx, val := range driveNodes(t, decProtos) {
		if string(val) != string(msg) {
			t.Fatalf("node %d decrypted %q after membership change", idx, val)
		}
	}

	// A share from outside the committee is rejected by the sender map,
	// not silently mis-attributed to a committee index.
	outsider, err := New(rand.Reader, nodes[1], dec)
	if err != nil {
		t.Fatal(err)
	}
	if err := outsider.Update(ProtocolMessage{Sender: 1, Round: 1, Payload: []byte("x")}); !errors.Is(err, ErrShareRejected) {
		t.Fatalf("non-member sender = %v, want ErrShareRejected", err)
	}
}

// TestReshareEpochPinning covers the request-side epoch guard: after a
// reshare, submissions pinned to the superseded epoch fail with the
// typed epoch error, unpinned submissions use the current epoch, and a
// stale reshare request (still naming epoch 1) cannot start.
func TestReshareEpochPinning(t *testing.T) {
	nodes := dealNodes(t, 1, 3, schemes.SG02)
	req := Request{Scheme: schemes.SG02, Op: OpReshare,
		Payload: identitySpec(1, 3).Marshal(), Epoch: keys.FirstEpoch}
	protos := make(map[int]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, req)
		if err != nil {
			t.Fatal(err)
		}
		protos[i+1] = p
	}
	driveNodes(t, protos)

	pk := keys.MustPublic[*sg02.PublicKey](nodes[0], schemes.SG02)
	ct, err := sg02.Encrypt(rand.Reader, pk, []byte("pinned"), nil)
	if err != nil {
		t.Fatal(err)
	}
	stale := Request{Scheme: schemes.SG02, Op: OpDecrypt, Payload: ct.Marshal(), Epoch: 1}
	if _, err := New(rand.Reader, nodes[0], stale); !errors.Is(err, keys.ErrKeyEpoch) {
		t.Fatalf("old-epoch decrypt = %v, want ErrKeyEpoch", err)
	}
	current := Request{Scheme: schemes.SG02, Op: OpDecrypt, Payload: ct.Marshal(), Epoch: 2}
	if _, err := New(rand.Reader, nodes[0], current); err != nil {
		t.Fatalf("current-epoch decrypt rejected: %v", err)
	}
	unpinned := Request{Scheme: schemes.SG02, Op: OpDecrypt, Payload: ct.Marshal()}
	if _, err := New(rand.Reader, nodes[0], unpinned); err != nil {
		t.Fatalf("unpinned decrypt rejected: %v", err)
	}
	staleReshare := Request{Scheme: schemes.SG02, Op: OpReshare,
		Payload: identitySpec(1, 3).Marshal(), Epoch: 1}
	if _, err := New(rand.Reader, nodes[0], staleReshare); !errors.Is(err, keys.ErrKeyEpoch) {
		t.Fatalf("stale reshare = %v, want ErrKeyEpoch", err)
	}
}

// TestReshareRejectsForgedDealing feeds a receiving node a dealing that
// re-shares the WRONG secret (a fabricated share instead of the
// dealer's committed one): the commitment check against the old
// verification key must reject it with the typed share error, and the
// forger must not enter the qualified set.
func TestReshareRejectsForgedDealing(t *testing.T) {
	nodes := dealNodes(t, 1, 3, schemes.SG02)
	req := Request{Scheme: schemes.SG02, Op: OpReshare,
		Payload: identitySpec(1, 3).Marshal(), Epoch: keys.FirstEpoch}
	p2, err := New(rand.Reader, nodes[1], req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.DoRound(); err != nil {
		t.Fatal(err)
	}
	g := keys.MustPublic[*sg02.PublicKey](nodes[0], schemes.SG02).Group
	forged, err := sharepkg.Reshare(rand.Reader, g, sharepkg.Share{Index: 1, Value: big.NewInt(42)}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	err = p2.Update(ProtocolMessage{Sender: 1, Round: 1, Payload: marshalReshareDealing(forged)})
	if !errors.Is(err, ErrShareRejected) {
		t.Fatalf("forged dealing = %v, want ErrShareRejected", err)
	}
	// The forger was heard (processed) but never qualifies; node 3's
	// honest dealing plus our own still reach oldT+1 = 2 dealers.
	p3, err := New(rand.Reader, nodes[2], req)
	if err != nil {
		t.Fatal(err)
	}
	out3, err := p3.DoRound()
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Update(ProtocolMessage{Sender: 3, Round: 1, Payload: out3.Payload}); err != nil {
		t.Fatal(err)
	}
	if !p2.IsReadyToFinalize() {
		t.Fatal("node 2 not ready after hearing every old member")
	}
	if _, err := p2.Finalize(); err != nil {
		t.Fatalf("finalize excluding the forger: %v", err)
	}
	k, err := nodes[1].Get(schemes.SG02, "")
	if err != nil {
		t.Fatal(err)
	}
	if k.Epoch != 2 {
		t.Fatalf("node 2 at epoch %d after excluding forger", k.Epoch)
	}
}

// TestProactiveRefreshRequestsConverge checks the scheduled-refresh
// invariant: every node independently derives the SAME instance IDs, so
// overlapping tickers across the mesh join rather than fork instances.
func TestProactiveRefreshRequestsConverge(t *testing.T) {
	nodes := dealNodes(t, 1, 3, schemes.SG02, schemes.BLS04, schemes.CKS05)
	reqs1 := ProactiveRefreshRequests(nodes[0])
	reqs2 := ProactiveRefreshRequests(nodes[1])
	if len(reqs1) != 2 {
		t.Fatalf("refresh produced %d requests, want 2 (SG02 + CKS05; BLS04 is deal-only)", len(reqs1))
	}
	if len(reqs1) != len(reqs2) {
		t.Fatalf("nodes disagree on refresh count: %d vs %d", len(reqs1), len(reqs2))
	}
	for i := range reqs1 {
		if reqs1[i].InstanceID() != reqs2[i].InstanceID() {
			t.Fatalf("request %d: instance IDs diverge across nodes", i)
		}
		if err := reqs1[i].Validate(); err != nil {
			t.Fatalf("refresh request %d invalid: %v", i, err)
		}
	}
}
