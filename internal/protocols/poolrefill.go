package protocols

import (
	"fmt"
	"io"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/precompute"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/wire"
)

// MarshalPoolRefill encodes an OpPoolRefill payload: the initiator's
// per-boot run id, the base sequence number the batch starts at, and
// the batch size. The run id namespaces the sequence numbers — a
// restarted initiator draws a fresh one, so its volatile sequence
// counter can never collide with ranges banked before the restart.
func MarshalPoolRefill(run, base uint64, batch int) []byte {
	return wire.NewWriter().Uint64(run).Uint64(base).Int(batch).Out()
}

// UnmarshalPoolRefill decodes an OpPoolRefill payload.
func UnmarshalPoolRefill(data []byte) (run, base uint64, batch int, err error) {
	r := wire.NewReader(data)
	run = r.Uint64()
	base = r.Uint64()
	batch = r.Int()
	if err := r.Err(); err != nil {
		return 0, 0, 0, fmt.Errorf("pool refill payload: %w", err)
	}
	if batch < 1 || batch > 4096 {
		return 0, 0, 0, fmt.Errorf("pool refill batch %d out of range", batch)
	}
	return run, base, batch, nil
}

// poolRefillProtocol is the one-round FROST preprocessing instance:
// every signer of the fixed signing group generates `batch` nonce pairs
// for sequence numbers base..base+batch-1, banks its own secrets in the
// node's nonce pool, and broadcasts the commitments; every node
// (signer or not) observes all commitments into its pool. The instance
// is ready once the commitments of the full signer group are banked —
// from then on the online signing path is a single round. The request
// epoch pins the sharing (checkedKey), so a refill can never bank
// material for a superseded epoch.
type poolRefillProtocol struct {
	rand io.Reader
	pk   *frost.PublicKey
	pool *precompute.NoncePool

	scheme string
	keyID  string
	epoch  int

	// selfShare is this node's committee share index (0 outside the
	// committee); only signers (selfShare ≤ T+1) contribute nonces.
	selfShare int
	run       uint64
	base      uint64
	batch     int

	signers   []int
	heard     map[int]bool
	started   bool
	finalized bool
}

func newPoolRefill(rand io.Reader, k *keys.Key, req Request, env Env, selfShare int) (Protocol, error) {
	pool := env.Suite.NoncePool()
	if !pool.Enabled() {
		return nil, fmt.Errorf("protocols: pool refill on a node with nonce pooling disabled")
	}
	pk, ok := k.Public.(*frost.PublicKey)
	if !ok {
		return nil, fmt.Errorf("protocols: key %s/%s public material is %T", k.Scheme, k.ID, k.Public)
	}
	run, base, batch, err := UnmarshalPoolRefill(req.Payload)
	if err != nil {
		return nil, fmt.Errorf("protocols: %w", err)
	}
	signers := make([]int, pk.T+1)
	for i := range signers {
		signers[i] = i + 1
	}
	return &poolRefillProtocol{
		rand: rand, pk: pk, pool: pool,
		scheme: string(k.Scheme), keyID: k.ID, epoch: k.Epoch,
		selfShare: selfShare,
		run:       run, base: base, batch: batch,
		signers: signers,
		heard:   make(map[int]bool, len(signers)),
	}, nil
}

func (p *poolRefillProtocol) isSigner() bool {
	return p.selfShare >= 1 && p.selfShare <= p.pk.T+1
}

func (p *poolRefillProtocol) DoRound() (*RoundOutput, error) {
	if p.finalized {
		return nil, ErrAlreadyFinalized
	}
	if p.started {
		return nil, nil
	}
	p.started = true
	if !p.isSigner() {
		return nil, nil
	}
	nonces, comms, err := frost.Precompute(p.rand, p.pk.Group, p.selfShare, p.batch)
	if err != nil {
		return nil, fmt.Errorf("pool refill: %w", err)
	}
	p.pool.BankOwn(p.scheme, p.keyID, p.epoch, p.run, p.base, nonces, comms)
	p.heard[p.selfShare] = true
	w := wire.NewWriter().Uint64(p.base).Int(len(comms))
	for _, c := range comms {
		w.Bytes(c.Marshal())
	}
	return &RoundOutput{Round: 1, Transport: TransportP2P, Payload: w.Out()}, nil
}

func (p *poolRefillProtocol) Update(msg ProtocolMessage) error {
	if p.finalized {
		return nil
	}
	r := wire.NewReader(msg.Payload)
	base := r.Uint64()
	count := r.Int()
	if err := r.Err(); err != nil || base != p.base || count < 1 || count > p.batch {
		return fmt.Errorf("%w: malformed pool refill batch from %d", ErrShareRejected, msg.Sender)
	}
	comms := make([]*frost.NonceCommitment, count)
	for i := range comms {
		c, err := frost.UnmarshalNonceCommitment(p.pk.Group, r.Bytes())
		if err != nil || c.Index != msg.Sender {
			return fmt.Errorf("%w: bad commitment in refill batch from %d", ErrShareRejected, msg.Sender)
		}
		comms[i] = c
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: truncated refill batch from %d", ErrShareRejected, msg.Sender)
	}
	p.pool.Observe(p.scheme, p.keyID, p.epoch, p.run, base, comms)
	p.heard[msg.Sender] = true
	return nil
}

func (p *poolRefillProtocol) IsReadyForNextRound() bool { return false }

func (p *poolRefillProtocol) IsReadyToFinalize() bool {
	if p.finalized || !p.started {
		return false
	}
	for _, idx := range p.signers {
		if !p.heard[idx] {
			return false
		}
	}
	return true
}

func (p *poolRefillProtocol) Finalize() ([]byte, error) {
	if !p.IsReadyToFinalize() {
		return nil, ErrNotReady
	}
	p.finalized = true
	return []byte(fmt.Sprintf("%d+%d", p.base, p.batch)), nil
}
