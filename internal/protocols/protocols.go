// Package protocols implements the core layer's protocol module: the
// Threshold Round Interface (TRI) that unifies non-interactive and
// multi-round threshold protocols, the generic single-round executor
// used by all non-interactive schemes, and the two-round FROST protocol.
//
// The TRI reproduces the paper's five functions (Section 3.5): DoRound,
// Update, IsReadyForNextRound, IsReadyToFinalize, and Finalize. A round
// is the local computation performed in response to network input until
// the party produces a result or a message for the other parties.
package protocols

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"thetacrypt/internal/group"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/wire"
)

// Transport selects the channel a protocol message travels on.
type Transport int

// Message transports: point-to-point gossip or total-order broadcast.
const (
	TransportP2P Transport = iota + 1
	TransportTOB
)

// Operation is the threshold operation requested by a client.
type Operation int

// Operations offered by the protocol API.
const (
	OpSign Operation = iota + 1
	OpDecrypt
	OpCoin
	// OpKeyGen runs a distributed key generation as a protocol
	// instance: the request's KeyID names the key to create, the
	// payload carries the DL group name (empty = edwards25519), and the
	// instance result is the new key's ID.
	OpKeyGen
	// OpReshare refreshes an existing key's sharing as a protocol
	// instance: the payload carries a marshaled ReshareSpec (the new
	// threshold and committee), the request's epoch pins the sharing
	// being refreshed, and the instance result is the new epoch in
	// decimal. Same-committee specs implement proactive refresh;
	// different committees grow, shrink or replace nodes live.
	OpReshare
	// OpPoolRefill banks a batch of FROST preprocessed nonces as a
	// one-round protocol instance: the payload carries the base
	// sequence number and batch size, the epoch pins the sharing the
	// nonces belong to, and every signer broadcasts its commitments
	// for the whole batch. It is engine-internal — ParseOperation
	// never produces it, so clients cannot submit one.
	OpPoolRefill
)

// String returns the lowercase operation name.
func (o Operation) String() string {
	switch o {
	case OpSign:
		return "sign"
	case OpDecrypt:
		return "decrypt"
	case OpCoin:
		return "coin"
	case OpKeyGen:
		return "keygen"
	case OpReshare:
		return "reshare"
	case OpPoolRefill:
		return "poolrefill"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// ParseOperation maps the wire names of the service layer back to
// operations.
func ParseOperation(op string) (Operation, error) {
	switch op {
	case "sign":
		return OpSign, nil
	case "decrypt":
		return OpDecrypt, nil
	case "coin":
		return OpCoin, nil
	case "keygen":
		return OpKeyGen, nil
	case "reshare":
		return OpReshare, nil
	default:
		return 0, fmt.Errorf("protocols: unknown operation %q", op)
	}
}

// MaxPayload bounds the request payload accepted by Validate (and with
// it the service layer); larger messages are hashed or chunked by the
// application.
const MaxPayload = 1 << 20

// Request is a client request for one threshold operation.
type Request struct {
	Scheme schemes.ID
	// KeyID names the key the operation runs under; empty selects the
	// scheme's default key. For OpKeyGen it names the key to create
	// (required — key generation never targets the implicit default).
	KeyID string
	Op    Operation
	// Payload is the message to sign, the marshaled ciphertext to
	// decrypt, the coin name, or (for OpKeyGen) the DL group name.
	Payload []byte
	// Session distinguishes repeated requests on the same payload.
	Session string
	// Epoch pins the request to one version of the key's sharing: a
	// request with Epoch > 0 is rejected unless it equals the key's
	// current epoch, so an old-epoch share can never enter a new-epoch
	// quorum. Zero means "the current epoch, whatever it is" — the
	// back-compatible default. OpReshare alone treats the epoch as
	// always pinned (zero pins a pre-epoch legacy key), so nodes
	// mid-reshare cannot deal from different sharings under one
	// instance ID.
	Epoch int
}

// Validation sentinels distinguished by the service layer's error
// model (api.ValidateRequest); scheme failures surface as the scheme
// registry's ErrUnknown.
var (
	ErrUnknownOperation = errors.New("protocols: unknown operation")
	ErrPayloadTooLarge  = errors.New("protocols: payload too large")
	// ErrBadKeyID flags a syntactically invalid key identifier (or a
	// keygen request without one).
	ErrBadKeyID = errors.New("protocols: bad key id")
	// ErrKeygenUnsupported flags a keygen request for a scheme the DKG
	// cannot produce keys for, or an unknown DKG group.
	ErrKeygenUnsupported = errors.New("protocols: keygen unsupported")
	// ErrReshareUnsupported flags a reshare request for a deal-only
	// scheme or with a malformed ReshareSpec payload.
	ErrReshareUnsupported = errors.New("protocols: reshare unsupported")
	// ErrBadEpoch flags a request with a negative epoch.
	ErrBadEpoch = errors.New("protocols: bad epoch")
)

// EffectiveKeyID resolves the key the request addresses: KeyID, or the
// scheme's default key when empty. All derived identity (InstanceID,
// the wire form) uses the effective ID, so "" and "default" name the
// same instance on every node.
func (r Request) EffectiveKeyID() string {
	if r.KeyID == "" {
		return keys.DefaultKeyID
	}
	return r.KeyID
}

// Validate checks the request against the scheme registry and the
// protocol module's structural limits before any instance state is
// created. It is the single validation seam shared by the embedded
// facade and the service layer. Whether the named key exists on a
// node is a runtime property checked at submission and execution, not
// here.
func (r Request) Validate() error {
	if _, err := schemes.Lookup(r.Scheme); err != nil {
		return err
	}
	switch r.Op {
	case OpSign, OpDecrypt, OpCoin:
		if !keys.ValidKeyID(r.EffectiveKeyID()) {
			return fmt.Errorf("%w %q", ErrBadKeyID, r.KeyID)
		}
	case OpKeyGen:
		if !keys.ValidKeyID(r.KeyID) {
			return fmt.Errorf("%w %q (keygen requires an explicit key id)", ErrBadKeyID, r.KeyID)
		}
		if !keys.SupportsDKG(r.Scheme) {
			return fmt.Errorf("%w: scheme %s is deal-only", ErrKeygenUnsupported, r.Scheme)
		}
		if len(r.Payload) > 0 {
			if _, err := group.ByName(string(r.Payload)); err != nil {
				return fmt.Errorf("%w: %v", ErrKeygenUnsupported, err)
			}
		}
	case OpReshare:
		if !keys.ValidKeyID(r.EffectiveKeyID()) {
			return fmt.Errorf("%w %q", ErrBadKeyID, r.KeyID)
		}
		if !keys.SupportsReshare(r.Scheme) {
			return fmt.Errorf("%w: scheme %s is deal-only", ErrReshareUnsupported, r.Scheme)
		}
		spec, err := UnmarshalReshareSpec(r.Payload)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrReshareUnsupported, err)
		}
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrReshareUnsupported, err)
		}
	case OpPoolRefill:
		if !keys.ValidKeyID(r.EffectiveKeyID()) {
			return fmt.Errorf("%w %q", ErrBadKeyID, r.KeyID)
		}
		if r.Scheme != schemes.KG20 {
			return fmt.Errorf("%w: pool refill applies to KG20 only, not %s", ErrUnknownOperation, r.Scheme)
		}
		if _, _, _, err := UnmarshalPoolRefill(r.Payload); err != nil {
			return fmt.Errorf("%w: %v", ErrUnknownOperation, err)
		}
	default:
		return fmt.Errorf("%w %d", ErrUnknownOperation, int(r.Op))
	}
	if r.Epoch < 0 {
		return fmt.Errorf("%w %d", ErrBadEpoch, r.Epoch)
	}
	if len(r.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes exceeds limit %d", ErrPayloadTooLarge, len(r.Payload), MaxPayload)
	}
	return nil
}

// InstanceID derives the deterministic protocol instance identifier all
// nodes agree on for this request. The key ID and epoch participate,
// so the same operation under two keys — or under two epochs of one
// key — is two instances (idempotency is per-key, per-epoch).
func (r Request) InstanceID() string {
	h := sha256.New()
	h.Write([]byte(r.Scheme))
	h.Write([]byte(r.EffectiveKeyID()))
	h.Write([]byte{byte(r.Op)})
	h.Write([]byte(r.Session))
	h.Write(r.Payload)
	if r.Epoch > 0 {
		// Epoch 0 ("current") hashes like a pre-epoch request, so
		// instance IDs of unpinned requests are unchanged across the
		// wire-format upgrade.
		fmt.Fprintf(h, "epoch:%d", r.Epoch)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Marshal encodes the request. The epoch rides last so pre-epoch
// decoders reading a zero-epoch request would only miss a trailing
// zero.
func (r Request) Marshal() []byte {
	return wire.NewWriter().
		String(string(r.Scheme)).Int(int(r.Op)).Bytes(r.Payload).String(r.Session).
		String(r.EffectiveKeyID()).Int(r.Epoch).Out()
}

// UnmarshalRequest decodes a request.
func UnmarshalRequest(data []byte) (Request, error) {
	rd := wire.NewReader(data)
	req := Request{
		Scheme: schemes.ID(rd.String()),
		Op:     Operation(rd.Int()),
	}
	req.Payload = rd.Bytes()
	req.Session = rd.String()
	req.KeyID = rd.String()
	req.Epoch = rd.Int()
	if err := rd.Err(); err != nil {
		return Request{}, fmt.Errorf("protocols request: %w", err)
	}
	return req, nil
}

// ProtocolMessage is one protocol-level message received from or sent to
// the network.
type ProtocolMessage struct {
	Sender  int
	Round   int
	Payload []byte
}

// RoundOutput is the product of one DoRound call: a message to forward
// to the other parties, or nil when the party has nothing to send in
// this round.
type RoundOutput struct {
	Round     int
	Transport Transport
	Payload   []byte
}

// Protocol is the Threshold Round Interface. Implementations are NOT
// safe for concurrent use; the orchestration executor serializes calls.
type Protocol interface {
	// DoRound triggers the local computation of the current round and
	// returns the resulting protocol message, if any. It is called once
	// at the start of the protocol and again whenever
	// IsReadyForNextRound reports true.
	DoRound() (*RoundOutput, error)
	// Update records a message received from the network.
	Update(msg ProtocolMessage) error
	// IsReadyForNextRound reports whether enough messages arrived to
	// advance to the next round.
	IsReadyForNextRound() bool
	// IsReadyToFinalize reports whether the result can be computed.
	IsReadyToFinalize() bool
	// Finalize assembles and returns the final result.
	Finalize() ([]byte, error)
}

// Errors shared by protocol implementations.
var (
	// ErrShareRejected flags an invalid share from a peer; the instance
	// keeps running and waits for further shares (robustness for
	// non-interactive schemes).
	ErrShareRejected = errors.New("protocols: share rejected")
	// ErrNotReady is returned by Finalize before the quorum is reached.
	ErrNotReady = errors.New("protocols: result not ready")
	// ErrAlreadyFinalized is returned when DoRound is called after the
	// protocol terminated.
	ErrAlreadyFinalized = errors.New("protocols: instance already finalized")
)

// shareAdapter is the minimal surface a non-interactive scheme exposes
// to the generic single-round protocol: create the local share, verify
// and accumulate peer shares, and combine once a quorum is reached. This
// is the seam that lets a new scheme plug into the protocol module
// without touching it (the paper's extensibility claim).
type shareAdapter interface {
	// CreateShare computes this party's share of the result.
	CreateShare(rand io.Reader) (selfIndex int, payload []byte, err error)
	// OnShare verifies and accumulates a peer share. Invalid shares
	// return ErrShareRejected (wrapped).
	OnShare(sender int, payload []byte) error
	// Ready reports whether a combining quorum has accumulated.
	Ready() bool
	// Combine assembles the final result from accumulated shares.
	Combine() ([]byte, error)
}

// nonInteractive runs any shareAdapter as a one-round TRI protocol.
type nonInteractive struct {
	adapter   shareAdapter
	rand      io.Reader
	started   bool
	finalized bool
}

// newNonInteractive wraps a scheme adapter into the TRI.
func newNonInteractive(rand io.Reader, adapter shareAdapter) Protocol {
	return &nonInteractive{adapter: adapter, rand: rand}
}

func (p *nonInteractive) DoRound() (*RoundOutput, error) {
	if p.finalized {
		return nil, ErrAlreadyFinalized
	}
	if p.started {
		// Single-round protocol: nothing to do in later rounds.
		return nil, nil
	}
	p.started = true
	self, payload, err := p.adapter.CreateShare(p.rand)
	if err != nil {
		return nil, fmt.Errorf("create share: %w", err)
	}
	// Account for the local share immediately: with t+1 = 1 the quorum
	// may already be complete.
	if err := p.adapter.OnShare(self, payload); err != nil {
		return nil, fmt.Errorf("accumulate own share: %w", err)
	}
	return &RoundOutput{Round: 1, Transport: TransportP2P, Payload: payload}, nil
}

func (p *nonInteractive) Update(msg ProtocolMessage) error {
	if p.finalized {
		return nil // late shares are ignored
	}
	if err := p.adapter.OnShare(msg.Sender, msg.Payload); err != nil {
		return fmt.Errorf("share from %d: %w", msg.Sender, err)
	}
	return nil
}

func (p *nonInteractive) IsReadyForNextRound() bool { return false }

func (p *nonInteractive) IsReadyToFinalize() bool {
	return p.started && !p.finalized && p.adapter.Ready()
}

func (p *nonInteractive) Finalize() ([]byte, error) {
	if !p.adapter.Ready() {
		return nil, ErrNotReady
	}
	out, err := p.adapter.Combine()
	if err != nil {
		return nil, err
	}
	p.finalized = true
	return out, nil
}
