package protocols

import (
	"fmt"
	"io"

	"thetacrypt/internal/dkg"
	"thetacrypt/internal/group"
	"thetacrypt/internal/identity"
	sharepkg "thetacrypt/internal/share"
	"thetacrypt/internal/wire"
)

// sealedWireVersion tags the v2 dealing broadcast: Feldman commitments
// plus per-recipient ECIES boxes instead of cleartext sub-shares. The
// tag is a wire-format integrity check, not a negotiation — whether a
// deployment runs sealed dealings is decided by configuration
// (identity material present on every node), and mixing sealed and
// cleartext nodes in one instance is a coordinated-upgrade violation
// that surfaces as rejected dealings.
const sealedWireVersion = 2

// Fault-injection seams for the complaint-round conformance tests: when
// non-nil, they may mutate the named node's dealing between dealing and
// sealing, so the corrupted sub-share lands in the recipient's box AND
// in the dealer's own justification — the deterministic-disqualification
// path. Production code never sets them.
var (
	TestFaultDealing        func(node int, d *dkg.Dealing)
	TestFaultReshareDealing func(node int, d *sharepkg.ReshareDealing)
)

// boxContext binds a sealed sub-share box to its exact slot: protocol
// kind, instance, dealer mesh node, and recipient mesh node. A box
// replayed into any other slot — another instance, another recipient,
// even the same pair with roles swapped — fails to open.
func boxContext(kind, instance string, dealer, to int) []byte {
	return []byte(fmt.Sprintf("thetacrypt/%s/v2/%s/%d/%d", kind, instance, dealer, to))
}

// marshalSubShare is the box plaintext: one share, index and value.
func marshalSubShare(s sharepkg.Share) []byte {
	return wire.NewWriter().Int(s.Index).BigInt(s.Value).Out()
}

func unmarshalSubShare(data []byte) (sharepkg.Share, error) {
	r := wire.NewReader(data)
	s := sharepkg.Share{Index: r.Int(), Value: r.BigInt()}
	if err := r.Err(); err != nil {
		return sharepkg.Share{}, err
	}
	if s.Index < 1 || s.Value == nil {
		return sharepkg.Share{}, fmt.Errorf("malformed sub-share")
	}
	return s, nil
}

// sealSubShares boxes each sub-share to its recipient's identity key.
// recipients[j] is the mesh node receiving subs[j] (share index j+1).
func sealSubShares(rand io.Reader, id *identity.Key,
	roster identity.Roster, kind, instance string, subs []sharepkg.Share, recipients []int) ([][]byte, error) {
	boxes := make([][]byte, len(subs))
	for j, s := range subs {
		to, err := roster.Lookup(recipients[j])
		if err != nil {
			return nil, fmt.Errorf("seal sub-share for node %d: %w", recipients[j], err)
		}
		box, err := identity.Seal(rand, to, boxContext(kind, instance, id.Node, recipients[j]), marshalSubShare(s))
		if err != nil {
			return nil, fmt.Errorf("seal sub-share for node %d: %w", recipients[j], err)
		}
		boxes[j] = box
	}
	return boxes, nil
}

// marshalSealedDealing encodes a v2 dealing broadcast: the commitment
// points and one sealed box per recipient. No sub-share bytes appear in
// the clear.
func marshalSealedDealing(points []group.Point, boxes [][]byte) []byte {
	w := wire.NewWriter()
	w.Int(sealedWireVersion)
	w.Int(len(points))
	for _, pt := range points {
		w.Bytes(pt.Marshal())
	}
	w.Int(len(boxes))
	for _, b := range boxes {
		w.Bytes(b)
	}
	return w.Out()
}

// unmarshalSealedDealing decodes a v2 dealing; wantBoxes pins the
// recipient count (n for the DKG, newN for reshares).
func unmarshalSealedDealing(g group.Group, wantBoxes int, data []byte) (*sharepkg.FeldmanCommitment, [][]byte, error) {
	r := wire.NewReader(data)
	if v := r.Int(); r.Err() != nil || v != sealedWireVersion {
		return nil, nil, fmt.Errorf("sealed dealing version %d, want %d (coordinated upgrade required)", v, sealedWireVersion)
	}
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if cnt < 1 || cnt > wantBoxes+1 {
		return nil, nil, fmt.Errorf("sealed dealing with %d commitment points", cnt)
	}
	pts := make([]group.Point, cnt)
	for i := 0; i < cnt; i++ {
		raw := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
		pt, err := g.UnmarshalPoint(raw)
		if err != nil {
			return nil, nil, err
		}
		pts[i] = pt
	}
	bcnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if bcnt != wantBoxes {
		return nil, nil, fmt.Errorf("sealed dealing with %d boxes for %d recipients", bcnt, wantBoxes)
	}
	boxes := make([][]byte, bcnt)
	for i := 0; i < bcnt; i++ {
		boxes[i] = r.Bytes()
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	return &sharepkg.FeldmanCommitment{Group: g, Points: pts}, boxes, nil
}

// marshalComplaints encodes a complaint-round broadcast: the dealers
// this node accuses (party indices in the DKG, old share indices in a
// reshare). An empty list is a valid — and the common — message: every
// node speaks in the complaint round so peers can tell "no complaints"
// from "not heard yet".
func marshalComplaints(dealers []int) []byte {
	w := wire.NewWriter().Int(len(dealers))
	for _, d := range dealers {
		w.Int(d)
	}
	return w.Out()
}

func unmarshalComplaints(data []byte, maxDealer int) ([]int, error) {
	r := wire.NewReader(data)
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if cnt < 0 || cnt > maxDealer {
		return nil, fmt.Errorf("complaint list of %d dealers", cnt)
	}
	out := make([]int, cnt)
	for i := range out {
		out[i] = r.Int()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for _, d := range out {
		if d < 1 || d > maxDealer {
			return nil, fmt.Errorf("complaint against out-of-range dealer %d", d)
		}
	}
	return out, nil
}

// marshalJustifications encodes a justification-round broadcast: the
// disputed sub-shares the sender reveals as the accused dealer. Like
// complaints, an empty message is the common case.
func marshalJustifications(shares []sharepkg.Share) []byte {
	w := wire.NewWriter().Int(len(shares))
	for _, s := range shares {
		w.Int(s.Index)
		w.BigInt(s.Value)
	}
	return w.Out()
}

func unmarshalJustifications(data []byte, maxIndex int) ([]sharepkg.Share, error) {
	r := wire.NewReader(data)
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if cnt < 0 || cnt > maxIndex {
		return nil, fmt.Errorf("justification list of %d shares", cnt)
	}
	out := make([]sharepkg.Share, cnt)
	for i := range out {
		out[i] = sharepkg.Share{Index: r.Int(), Value: r.BigInt()}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	for _, s := range out {
		if s.Index < 1 || s.Index > maxIndex || s.Value == nil {
			return nil, fmt.Errorf("malformed justification share")
		}
	}
	return out, nil
}
