package protocols

import (
	"crypto/rand"
	"errors"
	"testing"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/frost"
)

func dealNodes(t *testing.T, tt, n int, ids ...schemes.ID) []*keys.NodeKeys {
	t.Helper()
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		RSABits: 512, UseRSAFixture: true, Schemes: ids,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

// drive runs a set of TRI instances to completion by shuttling their
// messages directly, without any network.
func drive(t *testing.T, protos []Protocol) [][]byte {
	t.Helper()
	type pending struct {
		sender int
		out    *RoundOutput
	}
	var queue []pending
	for i, p := range protos {
		out, err := p.DoRound()
		if err != nil {
			t.Fatalf("node %d DoRound: %v", i+1, err)
		}
		if out != nil {
			queue = append(queue, pending{sender: i + 1, out: out})
		}
	}
	results := make([][]byte, len(protos))
	for steps := 0; steps < 10000; steps++ {
		allDone := true
		for i := range protos {
			if results[i] == nil {
				allDone = false
			}
		}
		if allDone {
			return results
		}
		if len(queue) == 0 {
			t.Fatal("deadlock: no messages in flight and not all finalized")
		}
		msg := queue[0]
		queue = queue[1:]
		for i, p := range protos {
			if i+1 == msg.sender {
				continue
			}
			if results[i] != nil {
				continue
			}
			err := p.Update(ProtocolMessage{Sender: msg.sender, Round: msg.out.Round, Payload: msg.out.Payload})
			if err != nil && !errors.Is(err, ErrShareRejected) {
				t.Fatalf("node %d update: %v", i+1, err)
			}
			for p.IsReadyForNextRound() {
				out, err := p.DoRound()
				if err != nil {
					t.Fatalf("node %d DoRound: %v", i+1, err)
				}
				if out != nil {
					queue = append(queue, pending{sender: i + 1, out: out})
				}
			}
			if p.IsReadyToFinalize() {
				val, err := p.Finalize()
				if err != nil {
					t.Fatalf("node %d finalize: %v", i+1, err)
				}
				results[i] = val
			}
		}
	}
	t.Fatal("drive did not converge")
	return nil
}

func TestRequestInstanceIDDeterministic(t *testing.T) {
	r1 := Request{Scheme: schemes.BLS04, Op: OpSign, Payload: []byte("x")}
	r2 := Request{Scheme: schemes.BLS04, Op: OpSign, Payload: []byte("x")}
	if r1.InstanceID() != r2.InstanceID() {
		t.Fatal("identical requests produced different IDs")
	}
	r3 := Request{Scheme: schemes.BLS04, Op: OpSign, Payload: []byte("y")}
	if r1.InstanceID() == r3.InstanceID() {
		t.Fatal("different payloads collided")
	}
	r4 := Request{Scheme: schemes.SH00, Op: OpSign, Payload: []byte("x")}
	if r1.InstanceID() == r4.InstanceID() {
		t.Fatal("different schemes collided")
	}
}

func TestRequestMarshalRoundTrip(t *testing.T) {
	r := Request{Scheme: schemes.CKS05, Op: OpCoin, Payload: []byte("name"), Session: "s"}
	got, err := UnmarshalRequest(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.InstanceID() != r.InstanceID() {
		t.Fatal("round trip changed instance ID")
	}
	if _, err := UnmarshalRequest([]byte("junk")); err == nil {
		t.Fatal("junk request decoded")
	}
}

func TestUnsupportedCombos(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.BLS04)
	bad := []Request{
		{Scheme: schemes.BLS04, Op: OpDecrypt},
		{Scheme: schemes.CKS05, Op: OpSign},
		{Scheme: "NOPE", Op: OpSign},
		{Scheme: schemes.SG02, Op: OpDecrypt}, // no SG02 keys dealt
	}
	for _, req := range bad {
		if _, err := New(rand.Reader, nodes[0], req); err == nil {
			t.Fatalf("request %v accepted", req)
		}
	}
}

func TestNonInteractiveTRISemantics(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.CKS05)
	protos := make([]Protocol, len(nodes))
	req := Request{Scheme: schemes.CKS05, Op: OpCoin, Payload: []byte("tri")}
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, req)
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
		if p.IsReadyToFinalize() {
			t.Fatal("ready to finalize before DoRound")
		}
		if _, err := p.Finalize(); !errors.Is(err, ErrNotReady) {
			t.Fatal("early finalize did not report ErrNotReady")
		}
	}
	results := drive(t, protos)
	for _, r := range results[1:] {
		if string(r) != string(results[0]) {
			t.Fatal("nodes disagree on coin value")
		}
	}
	// A second DoRound on a finalized instance errors.
	if _, err := protos[0].DoRound(); !errors.Is(err, ErrAlreadyFinalized) {
		t.Fatalf("want ErrAlreadyFinalized, got %v", err)
	}
}

func TestFrostTRITwoRounds(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.KG20)
	protos := make([]Protocol, len(nodes))
	req := Request{Scheme: schemes.KG20, Op: OpSign, Payload: []byte("frost tri")}
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, req)
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
	}
	results := drive(t, protos)
	sig, err := frost.UnmarshalSignature(nodes[0].FrostPK.Group, results[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := frost.Verify(nodes[0].FrostPK, []byte("frost tri"), sig); err != nil {
		t.Fatal(err)
	}
}

func TestFrostPrecomputedSkipsRound1(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.KG20)
	pk := nodes[0].FrostPK
	g := pk.Group
	quorum := pk.T + 1
	// Pre-exchange commitments for the signer group.
	nonces := make([]*frost.Nonce, quorum)
	comms := make([]*frost.NonceCommitment, quorum)
	for i := 0; i < quorum; i++ {
		n, c, err := frost.GenerateNonce(rand.Reader, g, i+1)
		if err != nil {
			t.Fatal(err)
		}
		nonces[i], comms[i] = n, c
	}
	msg := []byte("one round")
	// Assertion instance: with precomputed commitments the very first
	// DoRound emits a round-2 signature share, no commitment exchange.
	probe := NewFrost(rand.Reader, nodes[0], msg, nonces[0], comms)
	out, err := probe.DoRound()
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Round != 2 {
		t.Fatalf("expected round-2 output, got %+v", out)
	}

	protos := make([]Protocol, len(nodes))
	for i, nk := range nodes {
		var nonce *frost.Nonce
		if i < quorum {
			nonce = nonces[i]
		} else {
			nonce = nonces[0] // non-signers ignore the nonce
		}
		protos[i] = NewFrost(rand.Reader, nk, msg, nonce, comms)
	}
	results := drive(t, protos)
	sig, err := frost.UnmarshalSignature(g, results[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := frost.Verify(pk, msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestRejectedSharesSurfaceButDoNotKill(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.CKS05)
	req := Request{Scheme: schemes.CKS05, Op: OpCoin, Payload: []byte("byz")}
	p, err := New(rand.Reader, nodes[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DoRound(); err != nil {
		t.Fatal(err)
	}
	err = p.Update(ProtocolMessage{Sender: 2, Round: 1, Payload: []byte("garbage")})
	if !errors.Is(err, ErrShareRejected) {
		t.Fatalf("want ErrShareRejected, got %v", err)
	}
	if p.IsReadyToFinalize() {
		t.Fatal("garbage share advanced the quorum")
	}
}
