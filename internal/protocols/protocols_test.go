package protocols

import (
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"thetacrypt/internal/dkg"
	"thetacrypt/internal/group"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/frost"
)

func dealNodes(t *testing.T, tt, n int, ids ...schemes.ID) []*keys.Keystore {
	t.Helper()
	nodes, err := keys.Deal(rand.Reader, tt, n, keys.Options{
		RSABits: 512, UseRSAFixture: true, Schemes: ids,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

// drive runs a set of TRI instances to completion by shuttling their
// messages directly, without any network.
func drive(t *testing.T, protos []Protocol) [][]byte {
	t.Helper()
	type pending struct {
		sender int
		out    *RoundOutput
	}
	var queue []pending
	for i, p := range protos {
		out, err := p.DoRound()
		if err != nil {
			t.Fatalf("node %d DoRound: %v", i+1, err)
		}
		if out != nil {
			queue = append(queue, pending{sender: i + 1, out: out})
		}
	}
	results := make([][]byte, len(protos))
	for steps := 0; steps < 10000; steps++ {
		allDone := true
		for i := range protos {
			if results[i] == nil {
				allDone = false
			}
		}
		if allDone {
			return results
		}
		if len(queue) == 0 {
			t.Fatal("deadlock: no messages in flight and not all finalized")
		}
		msg := queue[0]
		queue = queue[1:]
		for i, p := range protos {
			if i+1 == msg.sender {
				continue
			}
			if results[i] != nil {
				continue
			}
			err := p.Update(ProtocolMessage{Sender: msg.sender, Round: msg.out.Round, Payload: msg.out.Payload})
			if err != nil && !errors.Is(err, ErrShareRejected) {
				t.Fatalf("node %d update: %v", i+1, err)
			}
			for p.IsReadyForNextRound() {
				out, err := p.DoRound()
				if err != nil {
					t.Fatalf("node %d DoRound: %v", i+1, err)
				}
				if out != nil {
					queue = append(queue, pending{sender: i + 1, out: out})
				}
			}
			if p.IsReadyToFinalize() {
				val, err := p.Finalize()
				if err != nil {
					t.Fatalf("node %d finalize: %v", i+1, err)
				}
				results[i] = val
			}
		}
	}
	t.Fatal("drive did not converge")
	return nil
}

func TestRequestInstanceIDDeterministic(t *testing.T) {
	r1 := Request{Scheme: schemes.BLS04, Op: OpSign, Payload: []byte("x")}
	r2 := Request{Scheme: schemes.BLS04, Op: OpSign, Payload: []byte("x")}
	if r1.InstanceID() != r2.InstanceID() {
		t.Fatal("identical requests produced different IDs")
	}
	r3 := Request{Scheme: schemes.BLS04, Op: OpSign, Payload: []byte("y")}
	if r1.InstanceID() == r3.InstanceID() {
		t.Fatal("different payloads collided")
	}
	r4 := Request{Scheme: schemes.SH00, Op: OpSign, Payload: []byte("x")}
	if r1.InstanceID() == r4.InstanceID() {
		t.Fatal("different schemes collided")
	}
}

func TestRequestMarshalRoundTrip(t *testing.T) {
	r := Request{Scheme: schemes.CKS05, Op: OpCoin, Payload: []byte("name"), Session: "s"}
	got, err := UnmarshalRequest(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.InstanceID() != r.InstanceID() {
		t.Fatal("round trip changed instance ID")
	}
	if _, err := UnmarshalRequest([]byte("junk")); err == nil {
		t.Fatal("junk request decoded")
	}
}

func TestUnsupportedCombos(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.BLS04)
	bad := []Request{
		{Scheme: schemes.BLS04, Op: OpDecrypt},
		{Scheme: schemes.CKS05, Op: OpSign},
		{Scheme: "NOPE", Op: OpSign},
		{Scheme: schemes.SG02, Op: OpDecrypt}, // no SG02 keys dealt
	}
	for _, req := range bad {
		if _, err := New(rand.Reader, nodes[0], req); err == nil {
			t.Fatalf("request %v accepted", req)
		}
	}
}

func TestNonInteractiveTRISemantics(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.CKS05)
	protos := make([]Protocol, len(nodes))
	req := Request{Scheme: schemes.CKS05, Op: OpCoin, Payload: []byte("tri")}
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, req)
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
		if p.IsReadyToFinalize() {
			t.Fatal("ready to finalize before DoRound")
		}
		if _, err := p.Finalize(); !errors.Is(err, ErrNotReady) {
			t.Fatal("early finalize did not report ErrNotReady")
		}
	}
	results := drive(t, protos)
	for _, r := range results[1:] {
		if string(r) != string(results[0]) {
			t.Fatal("nodes disagree on coin value")
		}
	}
	// A second DoRound on a finalized instance errors.
	if _, err := protos[0].DoRound(); !errors.Is(err, ErrAlreadyFinalized) {
		t.Fatalf("want ErrAlreadyFinalized, got %v", err)
	}
}

func TestFrostTRITwoRounds(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.KG20)
	protos := make([]Protocol, len(nodes))
	req := Request{Scheme: schemes.KG20, Op: OpSign, Payload: []byte("frost tri")}
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, req)
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
	}
	results := drive(t, protos)
	fpk := keys.MustPublic[*frost.PublicKey](nodes[0], schemes.KG20)
	sig, err := frost.UnmarshalSignature(fpk.Group, results[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := frost.Verify(fpk, []byte("frost tri"), sig); err != nil {
		t.Fatal(err)
	}
}

func TestFrostPrecomputedSkipsRound1(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.KG20)
	pk := keys.MustPublic[*frost.PublicKey](nodes[0], schemes.KG20)
	g := pk.Group
	quorum := pk.T + 1
	// Pre-exchange commitments for the signer group.
	nonces := make([]*frost.Nonce, quorum)
	comms := make([]*frost.NonceCommitment, quorum)
	for i := 0; i < quorum; i++ {
		n, c, err := frost.GenerateNonce(rand.Reader, g, i+1)
		if err != nil {
			t.Fatal(err)
		}
		nonces[i], comms[i] = n, c
	}
	msg := []byte("one round")
	// Assertion instance: with precomputed commitments the very first
	// DoRound emits a round-2 signature share, no commitment exchange.
	probe := NewFrost(rand.Reader, pk, keys.MustShare[frost.KeyShare](nodes[0], schemes.KG20), msg, nonces[0], comms)
	out, err := probe.DoRound()
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Round != 2 {
		t.Fatalf("expected round-2 output, got %+v", out)
	}

	protos := make([]Protocol, len(nodes))
	for i, nk := range nodes {
		var nonce *frost.Nonce
		if i < quorum {
			nonce = nonces[i]
		} else {
			nonce = nonces[0] // non-signers ignore the nonce
		}
		protos[i] = NewFrost(rand.Reader, pk, keys.MustShare[frost.KeyShare](nk, schemes.KG20), msg, nonce, comms)
	}
	results := drive(t, protos)
	sig, err := frost.UnmarshalSignature(g, results[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := frost.Verify(pk, msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestRejectedSharesSurfaceButDoNotKill(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.CKS05)
	req := Request{Scheme: schemes.CKS05, Op: OpCoin, Payload: []byte("byz")}
	p, err := New(rand.Reader, nodes[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DoRound(); err != nil {
		t.Fatal(err)
	}
	err = p.Update(ProtocolMessage{Sender: 2, Round: 1, Payload: []byte("garbage")})
	if !errors.Is(err, ErrShareRejected) {
		t.Fatalf("want ErrShareRejected, got %v", err)
	}
	if p.IsReadyToFinalize() {
		t.Fatal("garbage share advanced the quorum")
	}
}

// TestKeygenProtocolInstallsAgreedKey drives the OpKeyGen TRI protocol
// across four keystores and checks the DKG contract: every node
// installs the key under the requested ID, all public keys agree, and
// the new key immediately signs/decrypts through the ordinary request
// path.
func TestKeygenProtocolInstallsAgreedKey(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.CKS05) // keygen needs only thresholds, but deal CKS05 for contrast
	gen := Request{Scheme: schemes.KG20, KeyID: "runtime-1", Op: OpKeyGen}
	protos := make([]Protocol, len(nodes))
	for i, nk := range nodes {
		p, err := New(rand.Reader, nk, gen)
		if err != nil {
			t.Fatal(err)
		}
		protos[i] = p
	}
	results := drive(t, protos)
	for i, v := range results {
		if string(v) != "runtime-1" {
			t.Fatalf("node %d keygen result %q", i+1, v)
		}
	}
	ref, err := keys.Public[*frost.PublicKey](nodes[0], schemes.KG20, "runtime-1")
	if err != nil {
		t.Fatal(err)
	}
	t.Run("agreement", func(t *testing.T) {
		for i, nk := range nodes {
			pk, err := keys.Public[*frost.PublicKey](nk, schemes.KG20, "runtime-1")
			if err != nil {
				t.Fatalf("node %d: %v", i+1, err)
			}
			if !pk.Y.Equal(ref.Y) {
				t.Fatalf("node %d public key differs", i+1)
			}
			for j := range pk.VK {
				if !pk.VK[j].Equal(ref.VK[j]) {
					t.Fatalf("node %d VK[%d] differs", i+1, j)
				}
			}
		}
	})
	t.Run("usable-for-signing", func(t *testing.T) {
		sign := Request{Scheme: schemes.KG20, KeyID: "runtime-1", Op: OpSign, Payload: []byte("signed under DKG key")}
		sp := make([]Protocol, len(nodes))
		for i, nk := range nodes {
			p, err := New(rand.Reader, nk, sign)
			if err != nil {
				t.Fatal(err)
			}
			sp[i] = p
		}
		out := drive(t, sp)
		sig, err := frost.UnmarshalSignature(ref.Group, out[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := frost.Verify(ref, sign.Payload, sig); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("conflict", func(t *testing.T) {
		if _, err := New(rand.Reader, nodes[0], gen); !errors.Is(err, keys.ErrKeyExists) {
			t.Fatalf("re-running keygen for an installed key: %v", err)
		}
	})
	t.Run("unknown-key-lookup", func(t *testing.T) {
		req := Request{Scheme: schemes.KG20, KeyID: "never-made", Op: OpSign, Payload: []byte("x")}
		if _, err := New(rand.Reader, nodes[0], req); !errors.Is(err, keys.ErrKeyUnknown) {
			t.Fatalf("unknown key: %v", err)
		}
	})
}

// TestKeygenValidation pins the Validate contract for OpKeyGen and
// key-ID syntax.
func TestKeygenValidation(t *testing.T) {
	if err := (Request{Scheme: schemes.KG20, KeyID: "ok-1", Op: OpKeyGen}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Request{Scheme: schemes.KG20, Op: OpKeyGen}).Validate(); !errors.Is(err, ErrBadKeyID) {
		t.Fatalf("keygen without id: %v", err)
	}
	if err := (Request{Scheme: schemes.SH00, KeyID: "k", Op: OpKeyGen}).Validate(); !errors.Is(err, ErrKeygenUnsupported) {
		t.Fatalf("deal-only keygen: %v", err)
	}
	if err := (Request{Scheme: schemes.KG20, KeyID: "k", Op: OpKeyGen, Payload: []byte("no-such-group")}).Validate(); !errors.Is(err, ErrKeygenUnsupported) {
		t.Fatalf("unknown group: %v", err)
	}
	if err := (Request{Scheme: schemes.CKS05, KeyID: "bad id", Op: OpCoin}).Validate(); !errors.Is(err, ErrBadKeyID) {
		t.Fatalf("bad key id: %v", err)
	}
}

// TestKeyIDThreadsThroughIdentity pins that the key ID participates in
// the instance identity and the wire form, with "" and "default"
// naming the same instance.
func TestKeyIDThreadsThroughIdentity(t *testing.T) {
	base := Request{Scheme: schemes.CKS05, Op: OpCoin, Payload: []byte("c")}
	dflt := base
	dflt.KeyID = keys.DefaultKeyID
	if base.InstanceID() != dflt.InstanceID() {
		t.Fatal("empty and explicit default key IDs diverged")
	}
	other := base
	other.KeyID = "other"
	if base.InstanceID() == other.InstanceID() {
		t.Fatal("distinct keys share an instance")
	}
	got, err := UnmarshalRequest(other.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.KeyID != "other" || got.InstanceID() != other.InstanceID() {
		t.Fatalf("wire round trip lost the key id: %+v", got)
	}
}

// TestKeygenRejectsDealingWithAnyBadSubShare pins the deterministic
// exclusion rule: all n sub-shares travel in the broadcast dealing, so
// a node rejects a dealing whose sub-share for ANY party fails
// verification — not only its own — and every honest node excludes
// the dealer identically.
func TestKeygenRejectsDealingWithAnyBadSubShare(t *testing.T) {
	nodes := dealNodes(t, 1, 4, schemes.CKS05)
	gen := Request{Scheme: schemes.CKS05, KeyID: "tamper", Op: OpKeyGen}
	p1, err := New(rand.Reader, nodes[0], gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.DoRound(); err != nil {
		t.Fatal(err)
	}
	// Build dealer 2's dealing honestly, then corrupt the sub-share
	// addressed to party 3 (NOT the receiving party 1).
	dealer, err := dkg.NewParticipant(group.Edwards25519(), 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	dealing, err := dealer.Deal(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	dealing.SubShares[2].Value = new(big.Int).Add(dealing.SubShares[2].Value, big.NewInt(1))
	kg := p1.(*keygenProtocol)
	err = p1.Update(ProtocolMessage{Sender: 2, Round: 1, Payload: marshalDealing(dealing)})
	if !errors.Is(err, ErrShareRejected) {
		t.Fatalf("tampered dealing accepted: %v", err)
	}
	if qual := kg.part.Qualified(); len(qual) != 1 || qual[0] != 1 {
		t.Fatalf("dealer 2 not excluded: qualified=%v", qual)
	}
}
