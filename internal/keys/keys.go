// Package keys implements the setup phase of Thetacrypt: a trusted
// dealer that generates key material for every scheme at once, and the
// key manager used by the protocol executor to access per-node shares
// (the paper's Section 3.5, orchestration module). Distributed key
// generation lives in internal/dkg as the dealerless alternative.
package keys

import (
	"fmt"
	"io"

	"thetacrypt/internal/group"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
)

// Options configures the dealer.
type Options struct {
	// Group is the DL group for SG02, KG20, CKS05 (default edwards25519,
	// per Table 3).
	Group group.Group
	// RSABits is the SH00 modulus size (default 2048, per Table 3).
	RSABits int
	// UseRSAFixture selects the embedded deterministic safe primes
	// instead of minutes-long fresh generation; intended for tests and
	// benchmarks.
	UseRSAFixture bool
	// Schemes limits dealing to a subset; empty means all six.
	Schemes []schemes.ID
}

func (o *Options) fill() {
	if o.Group == nil {
		o.Group = group.Edwards25519()
	}
	if o.RSABits == 0 {
		o.RSABits = 2048
	}
	if len(o.Schemes) == 0 {
		o.Schemes = schemes.All()
	}
}

// NodeKeys is the complete key material of one Thetacrypt node. Public
// parts are shared across nodes; the shares are private.
type NodeKeys struct {
	Index int
	N, T  int

	SG02PK  *sg02.PublicKey
	SG02    sg02.KeyShare
	BZ03PK  *bz03.PublicKey
	BZ03    bz03.KeyShare
	SH00PK  *sh00.PublicKey
	SH00    sh00.KeyShare
	BLS04PK *bls04.PublicKey
	BLS04   bls04.KeyShare
	FrostPK *frost.PublicKey
	Frost   frost.KeyShare
	CKS05PK *cks05.PublicKey
	CKS05   cks05.KeyShare
}

// Has reports whether key material for a scheme is present.
func (nk *NodeKeys) Has(id schemes.ID) bool {
	switch id {
	case schemes.SG02:
		return nk.SG02PK != nil
	case schemes.BZ03:
		return nk.BZ03PK != nil
	case schemes.SH00:
		return nk.SH00PK != nil
	case schemes.BLS04:
		return nk.BLS04PK != nil
	case schemes.KG20:
		return nk.FrostPK != nil
	case schemes.CKS05:
		return nk.CKS05PK != nil
	default:
		return false
	}
}

// Deal runs the trusted-dealer setup for all requested schemes and
// returns one NodeKeys per party.
func Deal(rand io.Reader, t, n int, opts Options) ([]*NodeKeys, error) {
	opts.fill()
	nodes := make([]*NodeKeys, n)
	for i := range nodes {
		nodes[i] = &NodeKeys{Index: i + 1, N: n, T: t}
	}
	for _, id := range opts.Schemes {
		switch id {
		case schemes.SG02:
			pk, ks, err := sg02.Deal(rand, opts.Group, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal sg02: %w", err)
			}
			for i := range nodes {
				nodes[i].SG02PK, nodes[i].SG02 = pk, ks[i]
			}
		case schemes.BZ03:
			pk, ks, err := bz03.Deal(rand, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal bz03: %w", err)
			}
			for i := range nodes {
				nodes[i].BZ03PK, nodes[i].BZ03 = pk, ks[i]
			}
		case schemes.SH00:
			var (
				pk  *sh00.PublicKey
				ks  []sh00.KeyShare
				err error
			)
			if opts.UseRSAFixture {
				pk, ks, err = sh00.FixedTestKey(rand, opts.RSABits, t, n)
			} else {
				pk, ks, err = sh00.GenerateKey(rand, opts.RSABits, t, n)
			}
			if err != nil {
				return nil, fmt.Errorf("deal sh00: %w", err)
			}
			for i := range nodes {
				nodes[i].SH00PK, nodes[i].SH00 = pk, ks[i]
			}
		case schemes.BLS04:
			pk, ks, err := bls04.Deal(rand, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal bls04: %w", err)
			}
			for i := range nodes {
				nodes[i].BLS04PK, nodes[i].BLS04 = pk, ks[i]
			}
		case schemes.KG20:
			pk, ks, err := frost.Deal(rand, opts.Group, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal frost: %w", err)
			}
			for i := range nodes {
				nodes[i].FrostPK, nodes[i].Frost = pk, ks[i]
			}
		case schemes.CKS05:
			pk, ks, err := cks05.Deal(rand, opts.Group, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal cks05: %w", err)
			}
			for i := range nodes {
				nodes[i].CKS05PK, nodes[i].CKS05 = pk, ks[i]
			}
		default:
			return nil, fmt.Errorf("keys: unknown scheme %q", id)
		}
	}
	return nodes, nil
}

// Manager is the key-manager component of the orchestration layer: it
// hands protocol executors the key material they need.
type Manager struct {
	keys *NodeKeys
}

// NewManager wraps a node's key material.
func NewManager(nk *NodeKeys) *Manager { return &Manager{keys: nk} }

// Keys returns the underlying node keys.
func (m *Manager) Keys() *NodeKeys { return m.keys }

// Require returns the node keys if material for the scheme is present.
func (m *Manager) Require(id schemes.ID) (*NodeKeys, error) {
	if !m.keys.Has(id) {
		return nil, fmt.Errorf("keys: no key material for scheme %q on node %d", id, m.keys.Index)
	}
	return m.keys, nil
}
