// Package keys implements the key layer of Thetacrypt: a keystore of
// named keys addressed by (scheme, key ID), the trusted dealer that
// populates it offline, and the lookup surface the protocol executor
// uses to resolve the share material of a request (the paper's Section
// 3.5, orchestration module). Distributed key generation lives in
// internal/dkg and runs as a protocol instance (internal/protocols)
// that installs its result into the keystore at runtime — the paper's
// "threshold cryptography on-demand".
package keys

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"thetacrypt/internal/atomicfile"
	"thetacrypt/internal/group"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
)

// DefaultKeyID names the key a request without an explicit key ID
// resolves to. The dealer assigns it to every key it deals unless told
// otherwise.
const DefaultKeyID = "default"

// MaxKeyIDLen bounds key identifiers.
const MaxKeyIDLen = 64

// Typed keystore errors; the service layer maps them onto the
// structured error model (key_unknown 404, key_exists 409, key_epoch
// and key_no_share 409).
var (
	ErrKeyUnknown = errors.New("keys: unknown key")
	ErrKeyExists  = errors.New("keys: key already exists")
	ErrKeyID      = errors.New("keys: invalid key id")
	// ErrKeyEpoch reports an epoch mismatch: a request pinned to an
	// epoch other than the key's current one, or a Replace that does
	// not advance the epoch.
	ErrKeyEpoch = errors.New("keys: key epoch mismatch")
	// ErrKeyNoShare reports an operation that needs share material on
	// a node that only holds the key's public half (it was left out of
	// the committee by a membership-changing reshare).
	ErrKeyNoShare = errors.New("keys: node holds no share for key")
)

// FirstEpoch is the epoch of freshly dealt or DKG-generated keys.
// Epoch 0 is reserved for keys loaded from pre-epoch key files, so a
// legacy key file and a fresh dealing are distinguishable; each
// reshare advances the epoch by one.
const FirstEpoch = 1

// ValidKeyID reports whether id is a well-formed key identifier:
// 1..MaxKeyIDLen characters from [a-zA-Z0-9._-].
func ValidKeyID(id string) bool {
	if len(id) == 0 || len(id) > MaxKeyIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Key is one named key of the keystore: the public material shared by
// all nodes and this node's private share. Public and Share hold the
// scheme's own types (*sg02.PublicKey and sg02.KeyShare for SG02, and
// so on); Group labels the arithmetic structure for listings.
type Key struct {
	ID     string
	Scheme schemes.ID
	Group  string
	Public any
	Share  any
	// Epoch versions the share material: FirstEpoch at dealing/DKG
	// time, +1 per reshare, 0 for keys loaded from pre-epoch files.
	// Shares of different epochs never combine — a reshare replaces
	// the sharing polynomial.
	Epoch int
	// Members maps committee share indices to mesh node indices:
	// Members[j-1] is the node holding share j. Nil means the identity
	// committee 1..n (every dealt or DKG-generated key). A
	// membership-changing reshare installs an explicit committee.
	Members []int
	// Share is nil on nodes outside the committee: they keep the
	// public half (to serve Encrypt and to receive future reshares)
	// but cannot contribute to quorums.
}

// Info is the listable description of one key (no share material).
type Info struct {
	Scheme  schemes.ID
	ID      string
	Group   string
	Default bool
	// Public is the marshaled public key, so clients can compare the
	// key material served by different nodes.
	Public []byte
	// Epoch, T, N and Members mirror the lifecycle state of the key
	// (see Key); Members is nil for the identity committee.
	Epoch   int
	T, N    int
	Members []int
}

// Params returns the key's own threshold parameters (t, n). After a
// membership-changing reshare these can differ from the keystore's
// deployment-wide Index/N/T header.
func (k *Key) Params() (t, n int) {
	switch pk := k.Public.(type) {
	case *sg02.PublicKey:
		return pk.T, pk.N
	case *bz03.PublicKey:
		return pk.T, pk.N
	case *sh00.PublicKey:
		return pk.T, pk.NParties
	case *bls04.PublicKey:
		return pk.T, pk.N
	case *frost.PublicKey:
		return pk.T, pk.N
	case *cks05.PublicKey:
		return pk.T, pk.N
	default:
		return 0, 0
	}
}

// MemberIndex returns the committee share index (1-based) held by mesh
// node `node` under this key, or 0 when the node is not a member.
func (k *Key) MemberIndex(node int) int {
	if k.Members == nil {
		if _, n := k.Params(); node >= 1 && node <= n {
			return node
		}
		return 0
	}
	for j, m := range k.Members {
		if m == node {
			return j + 1
		}
	}
	return 0
}

// keyRef addresses one key: IDs are namespaced per scheme.
type keyRef struct {
	scheme schemes.ID
	id     string
}

// Keystore is one node's complete key material: any number of named
// keys per scheme, addressed by (scheme, key ID). It is safe for
// concurrent use — the protocol executor reads while a DKG instance
// installs new keys.
type Keystore struct {
	// Index is this node's 1-based party index; N and T are the
	// deployment size and corruption threshold. All keys of a store
	// share them.
	Index int
	N, T  int

	mu    sync.RWMutex
	order []*Key
	byRef map[keyRef]*Key

	// persistMu serializes writers of the durable key file; it is
	// always taken before mu's read lock (Marshal), never under it.
	persistMu   sync.Mutex
	persistPath string
}

// NewKeystore creates an empty keystore for party index of an (t, n)
// deployment.
func NewKeystore(index, t, n int) *Keystore {
	return &Keystore{Index: index, N: n, T: t, byRef: make(map[keyRef]*Key)}
}

// SetPersistPath makes the keystore durable: every successful Add or
// Replace re-spills the full store to path with an atomic
// write-temp-fsync-rename, so DKG and reshare results survive a node
// restart. The empty path (the default) disables persistence.
func (ks *Keystore) SetPersistPath(path string) {
	ks.persistMu.Lock()
	ks.persistPath = path
	ks.persistMu.Unlock()
}

// Save spills the current store to the persist path now (a no-op
// without one). Call it once after SetPersistPath to verify the file
// is writable before serving traffic.
func (ks *Keystore) Save() error { return ks.persist() }

func (ks *Keystore) persist() error {
	ks.persistMu.Lock()
	defer ks.persistMu.Unlock()
	if ks.persistPath == "" {
		return nil
	}
	if err := atomicfile.WriteFile(ks.persistPath, ks.Marshal(), 0o600); err != nil {
		return fmt.Errorf("keys: persist keystore: %w", err)
	}
	return nil
}

// Add installs a key. The (scheme, ID) pair must be unused
// (ErrKeyExists) and the ID well-formed (ErrKeyID). Group is derived
// from the public material when empty.
func (ks *Keystore) Add(k *Key) error {
	if err := ks.add(k); err != nil {
		return err
	}
	return ks.persist()
}

func (ks *Keystore) add(k *Key) error {
	if !ValidKeyID(k.ID) {
		return fmt.Errorf("%w %q", ErrKeyID, k.ID)
	}
	if _, err := schemes.Lookup(k.Scheme); err != nil {
		return err
	}
	if k.Group == "" {
		k.Group = deriveGroup(k)
	}
	ref := keyRef{scheme: k.Scheme, id: k.ID}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if _, ok := ks.byRef[ref]; ok {
		return fmt.Errorf("%w: %s/%s", ErrKeyExists, k.Scheme, k.ID)
	}
	ks.byRef[ref] = k
	ks.order = append(ks.order, k)
	return nil
}

// Replace swaps an existing key for its next-epoch version, the
// install step of a finalized reshare. The key must already exist and
// the replacement's epoch must be strictly greater than the current
// one (ErrKeyEpoch otherwise), so a stale or replayed reshare result
// can never roll a key back.
func (ks *Keystore) Replace(k *Key) error {
	if !ValidKeyID(k.ID) {
		return fmt.Errorf("%w %q", ErrKeyID, k.ID)
	}
	if k.Group == "" {
		k.Group = deriveGroup(k)
	}
	ref := keyRef{scheme: k.Scheme, id: k.ID}
	ks.mu.Lock()
	old, ok := ks.byRef[ref]
	if !ok {
		ks.mu.Unlock()
		return fmt.Errorf("%w: %s/%s on node %d", ErrKeyUnknown, k.Scheme, k.ID, ks.Index)
	}
	if k.Epoch <= old.Epoch {
		ks.mu.Unlock()
		return fmt.Errorf("%w: replacement epoch %d does not advance current %d for %s/%s",
			ErrKeyEpoch, k.Epoch, old.Epoch, k.Scheme, k.ID)
	}
	ks.byRef[ref] = k
	for i, cur := range ks.order {
		if cur == old {
			ks.order[i] = k
			break
		}
	}
	ks.mu.Unlock()
	return ks.persist()
}

// Get resolves a key by scheme and ID; the empty ID selects
// DefaultKeyID. A missing key reports ErrKeyUnknown.
func (ks *Keystore) Get(scheme schemes.ID, id string) (*Key, error) {
	if id == "" {
		id = DefaultKeyID
	}
	ks.mu.RLock()
	k, ok := ks.byRef[keyRef{scheme: scheme, id: id}]
	ks.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s on node %d", ErrKeyUnknown, scheme, id, ks.Index)
	}
	return k, nil
}

// Has reports whether any key for the scheme is present.
func (ks *Keystore) Has(scheme schemes.ID) bool {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	for _, k := range ks.order {
		if k.Scheme == scheme {
			return true
		}
	}
	return false
}

// Len reports the number of keys held.
func (ks *Keystore) Len() int {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return len(ks.order)
}

// Schemes lists the schemes with at least one key, in registry order.
func (ks *Keystore) Schemes() []schemes.ID {
	var out []schemes.ID
	for _, id := range schemes.All() {
		if ks.Has(id) {
			out = append(out, id)
		}
	}
	return out
}

// List snapshots the keystore's contents in a deterministic order
// (registry order, then key ID), without share material.
func (ks *Keystore) List() []Info {
	ks.mu.RLock()
	out := make([]Info, 0, len(ks.order))
	for _, k := range ks.order {
		t, n := k.Params()
		out = append(out, Info{
			Scheme:  k.Scheme,
			ID:      k.ID,
			Group:   k.Group,
			Default: k.ID == DefaultKeyID,
			Public:  k.PublicBytes(),
			Epoch:   k.Epoch,
			T:       t,
			N:       n,
			Members: append([]int(nil), k.Members...),
		})
	}
	ks.mu.RUnlock()
	pos := make(map[schemes.ID]int, len(schemes.All()))
	for i, id := range schemes.All() {
		pos[id] = i
	}
	sort.Slice(out, func(i, j int) bool {
		if pos[out[i].Scheme] != pos[out[j].Scheme] {
			return pos[out[i].Scheme] < pos[out[j].Scheme]
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Public resolves a key and returns its public material typed; the
// empty ID selects the default key.
func Public[P any](ks *Keystore, scheme schemes.ID, id string) (P, error) {
	var zero P
	k, err := ks.Get(scheme, id)
	if err != nil {
		return zero, err
	}
	p, ok := k.Public.(P)
	if !ok {
		return zero, fmt.Errorf("keys: %s/%s public material is %T", scheme, k.ID, k.Public)
	}
	return p, nil
}

// ShareOf resolves a key and returns this node's private share typed;
// the empty ID selects the default key.
func ShareOf[S any](ks *Keystore, scheme schemes.ID, id string) (S, error) {
	var zero S
	k, err := ks.Get(scheme, id)
	if err != nil {
		return zero, err
	}
	if k.Share == nil {
		return zero, fmt.Errorf("%w: %s/%s on node %d", ErrKeyNoShare, scheme, k.ID, ks.Index)
	}
	s, ok := k.Share.(S)
	if !ok {
		return zero, fmt.Errorf("keys: %s/%s share material is %T", scheme, k.ID, k.Share)
	}
	return s, nil
}

// MustPublic is Public for the default key, panicking when absent —
// for tests, benchmarks, and calibration code on freshly dealt stores.
func MustPublic[P any](ks *Keystore, scheme schemes.ID) P {
	p, err := Public[P](ks, scheme, DefaultKeyID)
	if err != nil {
		panic(err)
	}
	return p
}

// MustShare is ShareOf for the default key, panicking when absent.
func MustShare[S any](ks *Keystore, scheme schemes.ID) S {
	s, err := ShareOf[S](ks, scheme, DefaultKeyID)
	if err != nil {
		panic(err)
	}
	return s
}

// deriveGroup labels a key's arithmetic structure from its public
// material.
func deriveGroup(k *Key) string {
	switch pk := k.Public.(type) {
	case *sg02.PublicKey:
		return pk.Group.Name()
	case *frost.PublicKey:
		return pk.Group.Name()
	case *cks05.PublicKey:
		return pk.Group.Name()
	case *bz03.PublicKey, *bls04.PublicKey:
		return "bn254"
	case *sh00.PublicKey:
		return fmt.Sprintf("rsa-%d", pk.N.BitLen())
	default:
		return ""
	}
}

// SupportsDKG reports whether runtime key generation (internal/dkg,
// Pedersen JF-DKG over a DL group) can produce keys for the scheme.
// The RSA scheme (SH00) and the pairing-based schemes (BZ03, BLS04)
// need dealer- or scheme-specific setups and remain deal-only.
func SupportsDKG(scheme schemes.ID) bool {
	switch scheme {
	case schemes.SG02, schemes.KG20, schemes.CKS05:
		return true
	default:
		return false
	}
}

// SupportsReshare reports whether proactive refresh and membership
// change (internal/share reshare primitives over a DL group) apply to
// the scheme — the same set as DKG: the RSA and pairing schemes keep
// dealer-fixed shares.
func SupportsReshare(scheme schemes.ID) bool { return SupportsDKG(scheme) }

// Options configures the dealer.
type Options struct {
	// Group is the DL group for SG02, KG20, CKS05 (default edwards25519,
	// per Table 3).
	Group group.Group
	// RSABits is the SH00 modulus size (default 2048, per Table 3).
	RSABits int
	// UseRSAFixture selects the embedded deterministic safe primes
	// instead of minutes-long fresh generation; intended for tests and
	// benchmarks.
	UseRSAFixture bool
	// Schemes limits dealing to a subset; empty means all six.
	Schemes []schemes.ID
	// KeyID names the dealt keys (default DefaultKeyID).
	KeyID string
}

func (o *Options) fill() {
	if o.Group == nil {
		o.Group = group.Edwards25519()
	}
	if o.RSABits == 0 {
		o.RSABits = 2048
	}
	if len(o.Schemes) == 0 {
		o.Schemes = schemes.All()
	}
	if o.KeyID == "" {
		o.KeyID = DefaultKeyID
	}
}

// Deal runs the trusted-dealer setup for all requested schemes and
// returns one keystore per party, each holding one named key per
// scheme.
func Deal(rand io.Reader, t, n int, opts Options) ([]*Keystore, error) {
	opts.fill()
	if !ValidKeyID(opts.KeyID) {
		return nil, fmt.Errorf("%w %q", ErrKeyID, opts.KeyID)
	}
	stores := make([]*Keystore, n)
	for i := range stores {
		stores[i] = NewKeystore(i+1, t, n)
	}
	add := func(scheme schemes.ID, pub func(i int) any, shr func(i int) any) error {
		for i, ks := range stores {
			if err := ks.Add(&Key{ID: opts.KeyID, Scheme: scheme, Epoch: FirstEpoch, Public: pub(i), Share: shr(i)}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, id := range opts.Schemes {
		switch id {
		case schemes.SG02:
			pk, kss, err := sg02.Deal(rand, opts.Group, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal sg02: %w", err)
			}
			if err := add(id, func(int) any { return pk }, func(i int) any { return kss[i] }); err != nil {
				return nil, err
			}
		case schemes.BZ03:
			pk, kss, err := bz03.Deal(rand, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal bz03: %w", err)
			}
			if err := add(id, func(int) any { return pk }, func(i int) any { return kss[i] }); err != nil {
				return nil, err
			}
		case schemes.SH00:
			var (
				pk  *sh00.PublicKey
				kss []sh00.KeyShare
				err error
			)
			if opts.UseRSAFixture {
				pk, kss, err = sh00.FixedTestKey(rand, opts.RSABits, t, n)
			} else {
				pk, kss, err = sh00.GenerateKey(rand, opts.RSABits, t, n)
			}
			if err != nil {
				return nil, fmt.Errorf("deal sh00: %w", err)
			}
			if err := add(id, func(int) any { return pk }, func(i int) any { return kss[i] }); err != nil {
				return nil, err
			}
		case schemes.BLS04:
			pk, kss, err := bls04.Deal(rand, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal bls04: %w", err)
			}
			if err := add(id, func(int) any { return pk }, func(i int) any { return kss[i] }); err != nil {
				return nil, err
			}
		case schemes.KG20:
			pk, kss, err := frost.Deal(rand, opts.Group, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal frost: %w", err)
			}
			if err := add(id, func(int) any { return pk }, func(i int) any { return kss[i] }); err != nil {
				return nil, err
			}
		case schemes.CKS05:
			pk, kss, err := cks05.Deal(rand, opts.Group, t, n)
			if err != nil {
				return nil, fmt.Errorf("deal cks05: %w", err)
			}
			if err := add(id, func(int) any { return pk }, func(i int) any { return kss[i] }); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("keys: unknown scheme %q", id)
		}
	}
	return stores, nil
}
