package keys

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"

	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
	"thetacrypt/internal/wire"
)

func TestDealAllSchemes(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for i, nk := range nodes {
		if nk.Index != i+1 || nk.N != 4 || nk.T != 1 {
			t.Fatalf("node %d header wrong: %+v", i, nk)
		}
		for _, id := range schemes.All() {
			if !nk.Has(id) {
				t.Fatalf("node %d missing %s", i+1, id)
			}
			if _, err := nk.Get(id, ""); err != nil {
				t.Fatalf("node %d default key for %s: %v", i+1, id, err)
			}
		}
		if nk.Len() != len(schemes.All()) {
			t.Fatalf("node %d holds %d keys", i+1, nk.Len())
		}
	}
	// Shared public keys must be identical across nodes.
	pk0 := MustPublic[*bls04.PublicKey](nodes[0], schemes.BLS04)
	pk3 := MustPublic[*bls04.PublicKey](nodes[3], schemes.BLS04)
	if !pk0.Y.Equal(pk3.Y) {
		t.Fatal("BLS04 public keys differ across nodes")
	}
	// ...and so must the listed public bytes.
	l0, l3 := nodes[0].List(), nodes[3].List()
	for i := range l0 {
		if !bytes.Equal(l0[i].Public, l3[i].Public) {
			t.Fatalf("listed public material differs for %s/%s", l0[i].Scheme, l0[i].ID)
		}
	}
}

func TestDealSubsetAndNamedKeys(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{Schemes: []schemes.ID{schemes.CKS05}, KeyID: "beacon-1"})
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0].Has(schemes.SG02) || !nodes[0].Has(schemes.CKS05) {
		t.Fatal("subset dealing wrong")
	}
	if _, err := nodes[0].Get(schemes.CKS05, "beacon-1"); err != nil {
		t.Fatal(err)
	}
	// The named key is not the default.
	if _, err := nodes[0].Get(schemes.CKS05, ""); err == nil {
		t.Fatal("default lookup found a non-default key")
	}
	if _, err := nodes[0].Get(schemes.SG02, "beacon-1"); err == nil {
		t.Fatal("missing scheme not reported")
	}
}

func TestKeystoreAddGetErrors(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{Schemes: []schemes.ID{schemes.CKS05}})
	if err != nil {
		t.Fatal(err)
	}
	ks := nodes[0]
	cur, _ := ks.Get(schemes.CKS05, "")
	dup := &Key{ID: DefaultKeyID, Scheme: schemes.CKS05, Public: cur.Public, Share: cur.Share}
	if err := ks.Add(dup); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("duplicate add: %v", err)
	}
	if err := ks.Add(&Key{ID: "bad id!", Scheme: schemes.CKS05, Public: cur.Public, Share: cur.Share}); !errors.Is(err, ErrKeyID) {
		t.Fatalf("bad id add: %v", err)
	}
	if _, err := ks.Get(schemes.CKS05, "nope"); !errors.Is(err, ErrKeyUnknown) {
		t.Fatalf("unknown get: %v", err)
	}
	other := &Key{ID: "second", Scheme: schemes.CKS05, Public: cur.Public, Share: cur.Share}
	if err := ks.Add(other); err != nil {
		t.Fatal(err)
	}
	if got, _ := ks.Get(schemes.CKS05, "second"); got != other {
		t.Fatal("named lookup returned wrong key")
	}
	list := ks.List()
	if len(list) != 2 || !list[0].Default || list[1].ID != "second" {
		t.Fatalf("listing wrong: %+v", list)
	}
}

func TestValidKeyID(t *testing.T) {
	for _, ok := range []string{"default", "k-0a1b2c", "A.B_c-9"} {
		if !ValidKeyID(ok) {
			t.Fatalf("%q rejected", ok)
		}
	}
	long := make([]byte, MaxKeyIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "sl/ash", string(long)} {
		if ValidKeyID(bad) {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, nk := range nodes {
		got, err := UnmarshalKeystore(nk.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != nk.Index || got.N != nk.N || got.T != nk.T {
			t.Fatal("header mismatch")
		}
		for _, id := range schemes.All() {
			if !got.Has(id) {
				t.Fatalf("round trip lost %s", id)
			}
		}
		if MustShare[sg02.KeyShare](got, schemes.SG02).X.Cmp(MustShare[sg02.KeyShare](nk, schemes.SG02).X) != 0 {
			t.Fatal("share mismatch")
		}
		if !MustPublic[*cks05.PublicKey](got, schemes.CKS05).Y.Equal(MustPublic[*cks05.PublicKey](nk, schemes.CKS05).Y) {
			t.Fatal("cks05 pubkey mismatch")
		}
	}
	if _, err := UnmarshalKeystore([]byte("garbage")); err == nil {
		t.Fatal("garbage key file accepted")
	}
}

func TestNamedKeysSurviveRoundTrip(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{Schemes: []schemes.ID{schemes.CKS05}, KeyID: "beacon-1"})
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := nodes[0].Get(schemes.CKS05, "beacon-1")
	if err := nodes[0].Add(&Key{ID: "beacon-2", Scheme: schemes.CKS05, Public: cur.Public, Share: cur.Share}); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalKeystore(nodes[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip kept %d keys", got.Len())
	}
	for _, id := range []string{"beacon-1", "beacon-2"} {
		if _, err := got.Get(schemes.CKS05, id); err != nil {
			t.Fatalf("lost %s: %v", id, err)
		}
	}
}

// legacyMarshal writes the pre-keychain single-key format for the
// schemes present, byte-compatible with files dealt before the
// keystore redesign.
func legacyMarshal(t *testing.T, ks *Keystore) []byte {
	t.Helper()
	w := wire.NewWriter().Int(ks.Index).Int(ks.N).Int(ks.T)
	var present []schemes.ID
	for _, id := range schemes.All() {
		if ks.Has(id) {
			present = append(present, id)
		}
	}
	w.Int(len(present))
	for _, id := range present {
		k, err := ks.Get(id, "")
		if err != nil {
			t.Fatal(err)
		}
		w.String(string(id))
		writePublic(w, k)
		_, val := shareRef(k)
		w.BigInt(val)
	}
	return w.Out()
}

func TestLegacyKeyFilesStillLoad(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 3, Options{
		Schemes: []schemes.ID{schemes.SG02, schemes.CKS05},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, nk := range nodes {
		got, err := UnmarshalKeystore(legacyMarshal(t, nk))
		if err != nil {
			t.Fatalf("legacy load: %v", err)
		}
		if got.Index != nk.Index || got.N != nk.N || got.T != nk.T {
			t.Fatal("legacy header mismatch")
		}
		// Every legacy key surfaces under the default ID.
		for _, id := range []schemes.ID{schemes.SG02, schemes.CKS05} {
			k, err := got.Get(id, DefaultKeyID)
			if err != nil {
				t.Fatalf("legacy %s: %v", id, err)
			}
			if k.ID != DefaultKeyID {
				t.Fatalf("legacy %s loaded as %q, want default", id, k.ID)
			}
			// Pre-epoch files surface at epoch 0: distinguishable from
			// dealt keys (epoch 1) yet fully usable and resharable.
			if k.Epoch != 0 {
				t.Fatalf("legacy %s loaded at epoch %d, want 0", id, k.Epoch)
			}
		}
		if MustShare[sg02.KeyShare](got, schemes.SG02).X.Cmp(MustShare[sg02.KeyShare](nk, schemes.SG02).X) != 0 {
			t.Fatal("legacy share mismatch")
		}
	}
}

func TestRoundTrippedKeysStillWork(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 3, Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	restored := make([]*Keystore, len(nodes))
	for i, nk := range nodes {
		r, err := UnmarshalKeystore(nk.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		restored[i] = r
	}
	// BLS threshold signature with restored keys.
	msg := []byte("restored")
	var sss []*bls04.SigShare
	for _, nk := range restored[:2] {
		ss := bls04.SignShare(MustShare[bls04.KeyShare](nk, schemes.BLS04), msg)
		if err := bls04.VerifyShare(MustPublic[*bls04.PublicKey](nk, schemes.BLS04), msg, ss); err != nil {
			t.Fatal(err)
		}
		sss = append(sss, ss)
	}
	if _, err := bls04.Combine(MustPublic[*bls04.PublicKey](restored[0], schemes.BLS04), msg, sss); err != nil {
		t.Fatal(err)
	}
	// SH00 with restored keys (exercises the recomputed Delta).
	var rs []*sh00.SigShare
	for _, nk := range restored[:2] {
		pk := MustPublic[*sh00.PublicKey](nk, schemes.SH00)
		ss, err := sh00.SignShare(rand.Reader, pk, MustShare[sh00.KeyShare](nk, schemes.SH00), msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh00.VerifyShare(pk, msg, ss); err != nil {
			t.Fatal(err)
		}
		rs = append(rs, ss)
	}
	if _, err := sh00.Combine(MustPublic[*sh00.PublicKey](restored[0], schemes.SH00), msg, rs); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkKeystoreLookup measures the executor's hot-path resolution
// of a request's key material (CI bench smoke gates it).
func BenchmarkKeystoreLookup(b *testing.B) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{Schemes: []schemes.ID{schemes.CKS05}})
	if err != nil {
		b.Fatal(err)
	}
	ks := nodes[0]
	cur, _ := ks.Get(schemes.CKS05, "")
	for i := 0; i < 64; i++ {
		id := "k-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if err := ks.Add(&Key{ID: id + "x", Scheme: schemes.CKS05, Public: cur.Public, Share: cur.Share}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ks.Get(schemes.CKS05, DefaultKeyID); err != nil {
			b.Fatal(err)
		}
	}
}
