package keys

import (
	"crypto/rand"
	"testing"

	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/sh00"
)

func TestDealAllSchemes(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for i, nk := range nodes {
		if nk.Index != i+1 || nk.N != 4 || nk.T != 1 {
			t.Fatalf("node %d header wrong: %+v", i, nk)
		}
		for _, id := range schemes.All() {
			if !nk.Has(id) {
				t.Fatalf("node %d missing %s", i+1, id)
			}
		}
	}
	// Shared public keys must be identical across nodes.
	if !nodes[0].BLS04PK.Y.Equal(nodes[3].BLS04PK.Y) {
		t.Fatal("BLS04 public keys differ across nodes")
	}
}

func TestDealSubset(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{Schemes: []schemes.ID{schemes.CKS05}})
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0].Has(schemes.SG02) || !nodes[0].Has(schemes.CKS05) {
		t.Fatal("subset dealing wrong")
	}
	if _, err := NewManager(nodes[0]).Require(schemes.SG02); err == nil {
		t.Fatal("missing scheme not reported")
	}
	if _, err := NewManager(nodes[0]).Require(schemes.CKS05); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, nk := range nodes {
		got, err := UnmarshalNodeKeys(nk.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != nk.Index || got.N != nk.N || got.T != nk.T {
			t.Fatal("header mismatch")
		}
		for _, id := range schemes.All() {
			if !got.Has(id) {
				t.Fatalf("round trip lost %s", id)
			}
		}
		if got.SG02.X.Cmp(nk.SG02.X) != 0 || got.Frost.X.Cmp(nk.Frost.X) != 0 {
			t.Fatal("share mismatch")
		}
		if !got.CKS05PK.Y.Equal(nk.CKS05PK.Y) {
			t.Fatal("cks05 pubkey mismatch")
		}
	}
	if _, err := UnmarshalNodeKeys([]byte("garbage")); err == nil {
		t.Fatal("garbage key file accepted")
	}
}

func TestRoundTrippedKeysStillWork(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 3, Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	restored := make([]*NodeKeys, len(nodes))
	for i, nk := range nodes {
		r, err := UnmarshalNodeKeys(nk.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		restored[i] = r
	}
	// BLS threshold signature with restored keys.
	msg := []byte("restored")
	var sss []*bls04.SigShare
	for _, nk := range restored[:2] {
		ss := bls04.SignShare(nk.BLS04, msg)
		if err := bls04.VerifyShare(nk.BLS04PK, msg, ss); err != nil {
			t.Fatal(err)
		}
		sss = append(sss, ss)
	}
	if _, err := bls04.Combine(restored[0].BLS04PK, msg, sss); err != nil {
		t.Fatal(err)
	}
	// SH00 with restored keys (exercises the recomputed Delta).
	var rs []*sh00.SigShare
	for _, nk := range restored[:2] {
		ss, err := sh00.SignShare(rand.Reader, nk.SH00PK, nk.SH00, msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh00.VerifyShare(nk.SH00PK, msg, ss); err != nil {
			t.Fatal(err)
		}
		rs = append(rs, ss)
	}
	if _, err := sh00.Combine(restored[0].SH00PK, msg, rs); err != nil {
		t.Fatal(err)
	}
}
