package keys

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"crypto/rand"

	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/sg02"
)

func TestDealtKeysStartAtFirstEpoch(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{RSABits: 512, UseRSAFixture: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range nodes[0].List() {
		if info.Epoch != FirstEpoch {
			t.Fatalf("dealt %s/%s at epoch %d, want %d", info.Scheme, info.ID, info.Epoch, FirstEpoch)
		}
		if info.T != nodes[0].T || info.N != nodes[0].N {
			t.Fatalf("dealt %s/%s reports (t=%d, n=%d), want (%d, %d)",
				info.Scheme, info.ID, info.T, info.N, nodes[0].T, nodes[0].N)
		}
		if info.Members != nil {
			t.Fatalf("dealt %s/%s has explicit members %v, want identity", info.Scheme, info.ID, info.Members)
		}
	}
}

// TestEpochedKeystoreRoundTrip serializes a keystore holding the full
// post-reshare state — an advanced epoch, an explicit committee with a
// different threshold, and a public-only record on an excluded node —
// and verifies every field survives the TKS2 v3 round trip.
func TestEpochedKeystoreRoundTrip(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 4, Options{Schemes: []schemes.ID{schemes.SG02}})
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := nodes[0].Get(schemes.SG02, "")

	// Node 1 stayed in the reshared committee {1, 3} at threshold 1.
	member := &Key{
		ID: DefaultKeyID, Scheme: schemes.SG02, Epoch: 2, Members: []int{1, 3},
		Public: &sg02.PublicKey{
			Group: cur.Public.(*sg02.PublicKey).Group,
			H:     cur.Public.(*sg02.PublicKey).H,
			VK:    cur.Public.(*sg02.PublicKey).VK[:2],
			T:     1, N: 2,
		},
		Share: sg02.KeyShare{Index: 1, X: cur.Share.(sg02.KeyShare).X},
	}
	if err := nodes[0].Replace(member); err != nil {
		t.Fatal(err)
	}
	// Node 2 left the committee: public-only record, no share.
	observer := &Key{
		ID: DefaultKeyID, Scheme: schemes.SG02, Epoch: 2, Members: []int{1, 3},
		Public: member.Public,
	}
	if err := nodes[1].Replace(observer); err != nil {
		t.Fatal(err)
	}

	for i, want := range []*Key{member, observer} {
		got, err := UnmarshalKeystore(nodes[i].Marshal())
		if err != nil {
			t.Fatal(err)
		}
		k, err := got.Get(schemes.SG02, DefaultKeyID)
		if err != nil {
			t.Fatal(err)
		}
		if k.Epoch != 2 {
			t.Fatalf("node %d round-tripped epoch %d, want 2", i+1, k.Epoch)
		}
		if len(k.Members) != 2 || k.Members[0] != 1 || k.Members[1] != 3 {
			t.Fatalf("node %d round-tripped members %v, want [1 3]", i+1, k.Members)
		}
		if tt, nn := k.Params(); tt != 1 || nn != 2 {
			t.Fatalf("node %d round-tripped params (t=%d, n=%d), want (1, 2)", i+1, tt, nn)
		}
		if (k.Share == nil) != (want.Share == nil) {
			t.Fatalf("node %d share presence changed across round trip", i+1)
		}
	}

	// The public-only record answers quorum lookups with the typed
	// no-share error, not a type confusion.
	got, err := UnmarshalKeystore(nodes[1].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShareOf[sg02.KeyShare](got, schemes.SG02, ""); !errors.Is(err, ErrKeyNoShare) {
		t.Fatalf("public-only ShareOf = %v, want ErrKeyNoShare", err)
	}
}

func TestReplaceRequiresEpochAdvance(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 3, Options{Schemes: []schemes.ID{schemes.SG02}})
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := nodes[0].Get(schemes.SG02, "")
	stale := &Key{ID: DefaultKeyID, Scheme: schemes.SG02, Epoch: cur.Epoch, Public: cur.Public, Share: cur.Share}
	if err := nodes[0].Replace(stale); !errors.Is(err, ErrKeyEpoch) {
		t.Fatalf("same-epoch replace = %v, want ErrKeyEpoch", err)
	}
	missing := &Key{ID: "no-such", Scheme: schemes.SG02, Epoch: 5, Public: cur.Public}
	if err := nodes[0].Replace(missing); !errors.Is(err, ErrKeyUnknown) {
		t.Fatalf("replace of unknown key = %v, want ErrKeyUnknown", err)
	}
}

// TestKeystorePersistSpillsMutations attaches a persist path and
// verifies that Save, Add, and Replace each leave a loadable file whose
// contents match the in-memory keystore — the durability contract a
// restarted node relies on.
func TestKeystorePersistSpillsMutations(t *testing.T) {
	nodes, err := Deal(rand.Reader, 1, 3, Options{Schemes: []schemes.ID{schemes.SG02}})
	if err != nil {
		t.Fatal(err)
	}
	ks := nodes[0]
	path := filepath.Join(t.TempDir(), "node1.key")
	ks.SetPersistPath(path)
	if err := ks.Save(); err != nil {
		t.Fatal(err)
	}
	reload := func() *Keystore {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalKeystore(raw)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := reload(); got.Len() != ks.Len() {
		t.Fatalf("saved file holds %d keys, want %d", got.Len(), ks.Len())
	}

	cur, _ := ks.Get(schemes.SG02, "")
	if err := ks.Add(&Key{ID: "spare", Scheme: schemes.SG02, Public: cur.Public, Share: cur.Share}); err != nil {
		t.Fatal(err)
	}
	if _, err := reload().Get(schemes.SG02, "spare"); err != nil {
		t.Fatalf("Add was not spilled: %v", err)
	}

	bump := &Key{ID: DefaultKeyID, Scheme: schemes.SG02, Epoch: cur.Epoch + 1, Public: cur.Public, Share: cur.Share}
	if err := ks.Replace(bump); err != nil {
		t.Fatal(err)
	}
	if k, _ := reload().Get(schemes.SG02, DefaultKeyID); k == nil || k.Epoch != cur.Epoch+1 {
		t.Fatalf("Replace was not spilled: reloaded epoch %v", k)
	}
	// The atomic writer must not leave temp debris next to the file.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Fatalf("unexpected file %q next to keystore", e.Name())
		}
	}
}
