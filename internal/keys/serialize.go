package keys

import (
	"fmt"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/pairing"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
	"thetacrypt/internal/wire"
)

// Marshal serializes a node's complete key material. The encoding is the
// wire format used throughout the system; cmd/thetakeygen writes one
// file per node.
func (nk *NodeKeys) Marshal() []byte {
	w := wire.NewWriter().Int(nk.Index).Int(nk.N).Int(nk.T)
	var present []schemes.ID
	for _, id := range schemes.All() {
		if nk.Has(id) {
			present = append(present, id)
		}
	}
	w.Int(len(present))
	for _, id := range present {
		w.String(string(id))
		switch id {
		case schemes.SG02:
			w.String(nk.SG02PK.Group.Name())
			w.Bytes(nk.SG02PK.H.Marshal())
			writePoints(w, nk.SG02PK.VK)
			w.BigInt(nk.SG02.X)
		case schemes.BZ03:
			w.Bytes(nk.BZ03PK.Y.Marshal())
			w.Int(len(nk.BZ03PK.VK))
			for _, vk := range nk.BZ03PK.VK {
				w.Bytes(vk.Marshal())
			}
			w.BigInt(nk.BZ03.X)
		case schemes.SH00:
			w.BigInt(nk.SH00PK.N).BigInt(nk.SH00PK.E).BigInt(nk.SH00PK.V)
			w.Int(len(nk.SH00PK.VK))
			for _, vk := range nk.SH00PK.VK {
				w.BigInt(vk)
			}
			w.BigInt(nk.SH00.S)
		case schemes.BLS04:
			w.Bytes(nk.BLS04PK.Y.Marshal())
			w.Int(len(nk.BLS04PK.VK))
			for _, vk := range nk.BLS04PK.VK {
				w.Bytes(vk.Marshal())
			}
			w.BigInt(nk.BLS04.X)
		case schemes.KG20:
			w.String(nk.FrostPK.Group.Name())
			w.Bytes(nk.FrostPK.Y.Marshal())
			writePoints(w, nk.FrostPK.VK)
			w.BigInt(nk.Frost.X)
		case schemes.CKS05:
			w.String(nk.CKS05PK.Group.Name())
			w.Bytes(nk.CKS05PK.Y.Marshal())
			writePoints(w, nk.CKS05PK.VK)
			w.BigInt(nk.CKS05.X)
		}
	}
	return w.Out()
}

// UnmarshalNodeKeys parses key material written by Marshal.
func UnmarshalNodeKeys(data []byte) (*NodeKeys, error) {
	r := wire.NewReader(data)
	nk := &NodeKeys{Index: r.Int(), N: r.Int(), T: r.Int()}
	count := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys header: %w", err)
	}
	for i := 0; i < count; i++ {
		id := schemes.ID(r.String())
		switch id {
		case schemes.SG02:
			g, err := group.ByName(r.String())
			if err != nil {
				return nil, err
			}
			h, err := readPoint(r, g)
			if err != nil {
				return nil, err
			}
			vk, err := readPoints(r, g)
			if err != nil {
				return nil, err
			}
			nk.SG02PK = &sg02.PublicKey{Group: g, H: h, VK: vk, T: nk.T, N: nk.N}
			nk.SG02 = sg02.KeyShare{Index: nk.Index, X: r.BigInt()}
		case schemes.BZ03:
			y, ok := pairing.UnmarshalG1(r.Bytes())
			if !ok {
				return nil, fmt.Errorf("keys bz03: bad Y")
			}
			cnt := r.Int()
			vk := make([]*pairing.G2, cnt)
			for j := 0; j < cnt; j++ {
				p, ok := pairing.UnmarshalG2(r.Bytes())
				if !ok {
					return nil, fmt.Errorf("keys bz03: bad VK[%d]", j)
				}
				vk[j] = p
			}
			nk.BZ03PK = &bz03.PublicKey{Y: y, VK: vk, T: nk.T, N: nk.N}
			nk.BZ03 = bz03.KeyShare{Index: nk.Index, X: r.BigInt()}
		case schemes.SH00:
			pk := &sh00.PublicKey{
				N: r.BigInt(), E: r.BigInt(), V: r.BigInt(),
				T: nk.T, NParties: nk.N,
			}
			cnt := r.Int()
			for j := 0; j < cnt; j++ {
				pk.VK = append(pk.VK, r.BigInt())
			}
			pk.Delta = mathutil.Factorial(nk.N)
			nk.SH00PK = pk
			nk.SH00 = sh00.KeyShare{Index: nk.Index, S: r.BigInt()}
		case schemes.BLS04:
			y, ok := pairing.UnmarshalG2(r.Bytes())
			if !ok {
				return nil, fmt.Errorf("keys bls04: bad Y")
			}
			cnt := r.Int()
			vk := make([]*pairing.G2, cnt)
			for j := 0; j < cnt; j++ {
				p, ok := pairing.UnmarshalG2(r.Bytes())
				if !ok {
					return nil, fmt.Errorf("keys bls04: bad VK[%d]", j)
				}
				vk[j] = p
			}
			nk.BLS04PK = &bls04.PublicKey{Y: y, VK: vk, T: nk.T, N: nk.N}
			nk.BLS04 = bls04.KeyShare{Index: nk.Index, X: r.BigInt()}
		case schemes.KG20:
			g, err := group.ByName(r.String())
			if err != nil {
				return nil, err
			}
			y, err := readPoint(r, g)
			if err != nil {
				return nil, err
			}
			vk, err := readPoints(r, g)
			if err != nil {
				return nil, err
			}
			nk.FrostPK = &frost.PublicKey{Group: g, Y: y, VK: vk, T: nk.T, N: nk.N}
			nk.Frost = frost.KeyShare{Index: nk.Index, X: r.BigInt()}
		case schemes.CKS05:
			g, err := group.ByName(r.String())
			if err != nil {
				return nil, err
			}
			y, err := readPoint(r, g)
			if err != nil {
				return nil, err
			}
			vk, err := readPoints(r, g)
			if err != nil {
				return nil, err
			}
			nk.CKS05PK = &cks05.PublicKey{Group: g, Y: y, VK: vk, T: nk.T, N: nk.N}
			nk.CKS05 = cks05.KeyShare{Index: nk.Index, X: r.BigInt()}
		default:
			return nil, fmt.Errorf("keys: unknown scheme %q in key file", id)
		}
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("keys %s: %w", id, err)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys: %w", err)
	}
	return nk, nil
}

func writePoints(w *wire.Writer, pts []group.Point) {
	w.Int(len(pts))
	for _, p := range pts {
		w.Bytes(p.Marshal())
	}
}

func readPoint(r *wire.Reader, g group.Group) (group.Point, error) {
	raw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return g.UnmarshalPoint(raw)
}

func readPoints(r *wire.Reader, g group.Group) ([]group.Point, error) {
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]group.Point, cnt)
	for i := 0; i < cnt; i++ {
		p, err := readPoint(r, g)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
