package keys

import (
	"fmt"
	"math/big"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/pairing"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
	"thetacrypt/internal/wire"
)

// The keystore file format is versioned. Version 3 ("TKS2") carries
// the key lifecycle state: per-record epoch, committee membership and
// per-key (t, n) — after a membership-changing reshare these differ
// from the store header — plus an explicit has-share flag so nodes
// outside a key's committee persist the public half only. Version 2
// (named keys, pre-epoch) and the unversioned legacy format (one
// anonymous key per scheme; its first field is an 8-byte node index
// where newer files carry the 4-byte magic) still load, with every key
// at epoch 0.
const (
	keystoreMagic   = "TKS2"
	keystoreVersion = 3
)

// Marshal serializes the keystore — header, then one named-key record
// per key. The encoding is the wire format used throughout the system;
// cmd/thetakeygen writes one file per node.
func (ks *Keystore) Marshal() []byte {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	w := wire.NewWriter().String(keystoreMagic).Int(keystoreVersion)
	w.Int(ks.Index).Int(ks.N).Int(ks.T)
	w.Int(len(ks.order))
	for _, k := range ks.order {
		w.String(k.ID).String(string(k.Scheme))
		w.Int(k.Epoch)
		t, n := k.Params()
		w.Int(t).Int(n)
		w.Int(len(k.Members))
		for _, m := range k.Members {
			w.Int(m)
		}
		idx, val := shareRef(k)
		w.Int(idx)
		writePublic(w, k)
		if idx > 0 {
			w.BigInt(val)
		}
	}
	return w.Out()
}

// UnmarshalKeystore parses a keystore file of any supported format:
// the current v3 lifecycle format, the pre-epoch v2 named-key format,
// or the legacy single-key-per-scheme format (each key loads under
// DefaultKeyID). Pre-v3 keys load at epoch 0 with the identity
// committee.
func UnmarshalKeystore(data []byte) (*Keystore, error) {
	r := wire.NewReader(data)
	if r.String() != keystoreMagic || r.Err() != nil {
		return unmarshalLegacy(data)
	}
	version := r.Int()
	if version != 2 && version != keystoreVersion {
		return nil, fmt.Errorf("keys: unsupported keystore version %d", version)
	}
	ks := NewKeystore(r.Int(), 0, 0)
	ks.N = r.Int()
	ks.T = r.Int()
	count := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys header: %w", err)
	}
	for i := 0; i < count; i++ {
		id := r.String()
		scheme := schemes.ID(r.String())
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("keys record %d: %w", i, err)
		}
		var k *Key
		var err error
		if version == 2 {
			k, err = readRecordV2(r, scheme, ks.Index, ks.T, ks.N)
		} else {
			k, err = readRecordV3(r, scheme)
		}
		if err != nil {
			return nil, fmt.Errorf("keys %s/%s: %w", scheme, id, err)
		}
		k.ID = id
		if err := ks.Add(k); err != nil {
			return nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys: %w", err)
	}
	return ks, nil
}

// readRecordV2 reads one pre-epoch record: public material then the
// share value, with index and (t, n) taken from the store header.
func readRecordV2(r *wire.Reader, scheme schemes.ID, index, t, n int) (*Key, error) {
	pub, shr, err := readMaterial(r, scheme, index, t, n)
	if err != nil {
		return nil, err
	}
	return &Key{Scheme: scheme, Public: pub, Share: shr}, nil
}

// readRecordV3 reads one lifecycle record: epoch, per-key (t, n),
// committee, share index (0 = public-only), public material, and the
// share value when present.
func readRecordV3(r *wire.Reader, scheme schemes.ID) (*Key, error) {
	epoch := r.Int()
	t := r.Int()
	n := r.Int()
	mcount := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if mcount < 0 || mcount > 1<<16 {
		return nil, fmt.Errorf("keys: implausible committee size %d", mcount)
	}
	var members []int
	if mcount > 0 {
		members = make([]int, mcount)
		for i := range members {
			members[i] = r.Int()
		}
	}
	idx := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	pub, err := readPublic(r, scheme, t, n)
	if err != nil {
		return nil, err
	}
	var shr any
	if idx > 0 {
		shr = makeShare(scheme, idx, r.BigInt())
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return &Key{Scheme: scheme, Public: pub, Share: shr, Epoch: epoch, Members: members}, nil
}

// unmarshalLegacy reads the pre-keychain format: Index, N, T, then one
// anonymous record per scheme. Every key loads under DefaultKeyID, so
// existing node*.key files keep working unchanged.
func unmarshalLegacy(data []byte) (*Keystore, error) {
	r := wire.NewReader(data)
	ks := NewKeystore(r.Int(), 0, 0)
	ks.N = r.Int()
	ks.T = r.Int()
	count := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys header: %w", err)
	}
	for i := 0; i < count; i++ {
		scheme := schemes.ID(r.String())
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("keys record %d: %w", i, err)
		}
		pub, shr, err := readMaterial(r, scheme, ks.Index, ks.T, ks.N)
		if err != nil {
			return nil, fmt.Errorf("keys %s: %w", scheme, err)
		}
		if err := ks.Add(&Key{ID: DefaultKeyID, Scheme: scheme, Public: pub, Share: shr}); err != nil {
			return nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys: %w", err)
	}
	return ks, nil
}

// writePublic appends one key's public material. The per-scheme
// encodings are unchanged from the legacy format; in every pre-v3
// record the share value followed directly, which is why the formats
// can share the read path.
func writePublic(w *wire.Writer, k *Key) {
	switch k.Scheme {
	case schemes.SG02:
		pk := k.Public.(*sg02.PublicKey)
		w.String(pk.Group.Name())
		w.Bytes(pk.H.Marshal())
		writePoints(w, pk.VK)
	case schemes.BZ03:
		pk := k.Public.(*bz03.PublicKey)
		w.Bytes(pk.Y.Marshal())
		w.Int(len(pk.VK))
		for _, vk := range pk.VK {
			w.Bytes(vk.Marshal())
		}
	case schemes.SH00:
		pk := k.Public.(*sh00.PublicKey)
		w.BigInt(pk.N).BigInt(pk.E).BigInt(pk.V)
		w.Int(len(pk.VK))
		for _, vk := range pk.VK {
			w.BigInt(vk)
		}
	case schemes.BLS04:
		pk := k.Public.(*bls04.PublicKey)
		w.Bytes(pk.Y.Marshal())
		w.Int(len(pk.VK))
		for _, vk := range pk.VK {
			w.Bytes(vk.Marshal())
		}
	case schemes.KG20:
		pk := k.Public.(*frost.PublicKey)
		w.String(pk.Group.Name())
		w.Bytes(pk.Y.Marshal())
		writePoints(w, pk.VK)
	case schemes.CKS05:
		pk := k.Public.(*cks05.PublicKey)
		w.String(pk.Group.Name())
		w.Bytes(pk.Y.Marshal())
		writePoints(w, pk.VK)
	}
}

// shareRef extracts the share index and scalar value of a key's share
// material; (0, nil) for public-only records.
func shareRef(k *Key) (int, *big.Int) {
	switch s := k.Share.(type) {
	case sg02.KeyShare:
		return s.Index, s.X
	case bz03.KeyShare:
		return s.Index, s.X
	case sh00.KeyShare:
		return s.Index, s.S
	case bls04.KeyShare:
		return s.Index, s.X
	case frost.KeyShare:
		return s.Index, s.X
	case cks05.KeyShare:
		return s.Index, s.X
	default:
		return 0, nil
	}
}

// makeShare wraps a share scalar in the scheme's key-share type.
func makeShare(scheme schemes.ID, index int, v *big.Int) any {
	switch scheme {
	case schemes.SG02:
		return sg02.KeyShare{Index: index, X: v}
	case schemes.BZ03:
		return bz03.KeyShare{Index: index, X: v}
	case schemes.SH00:
		return sh00.KeyShare{Index: index, S: v}
	case schemes.BLS04:
		return bls04.KeyShare{Index: index, X: v}
	case schemes.KG20:
		return frost.KeyShare{Index: index, X: v}
	case schemes.CKS05:
		return cks05.KeyShare{Index: index, X: v}
	default:
		return nil
	}
}

// readPublic parses one key's public material into the scheme's
// public-key type with the given threshold parameters.
func readPublic(r *wire.Reader, scheme schemes.ID, t, n int) (any, error) {
	var pub any
	switch scheme {
	case schemes.SG02:
		g, err := group.ByName(r.String())
		if err != nil {
			return nil, err
		}
		h, err := readPoint(r, g)
		if err != nil {
			return nil, err
		}
		vk, err := readPoints(r, g)
		if err != nil {
			return nil, err
		}
		pub = &sg02.PublicKey{Group: g, H: h, VK: vk, T: t, N: n}
	case schemes.BZ03:
		y, ok := pairing.UnmarshalG1(r.Bytes())
		if !ok {
			return nil, fmt.Errorf("bad Y")
		}
		cnt := r.Int()
		vk := make([]*pairing.G2, cnt)
		for j := 0; j < cnt; j++ {
			p, ok := pairing.UnmarshalG2(r.Bytes())
			if !ok {
				return nil, fmt.Errorf("bad VK[%d]", j)
			}
			vk[j] = p
		}
		pub = &bz03.PublicKey{Y: y, VK: vk, T: t, N: n}
	case schemes.SH00:
		pk := &sh00.PublicKey{
			N: r.BigInt(), E: r.BigInt(), V: r.BigInt(),
			T: t, NParties: n,
		}
		cnt := r.Int()
		for j := 0; j < cnt; j++ {
			pk.VK = append(pk.VK, r.BigInt())
		}
		pk.Delta = mathutil.Factorial(n)
		pub = pk
	case schemes.BLS04:
		y, ok := pairing.UnmarshalG2(r.Bytes())
		if !ok {
			return nil, fmt.Errorf("bad Y")
		}
		cnt := r.Int()
		vk := make([]*pairing.G2, cnt)
		for j := 0; j < cnt; j++ {
			p, ok := pairing.UnmarshalG2(r.Bytes())
			if !ok {
				return nil, fmt.Errorf("bad VK[%d]", j)
			}
			vk[j] = p
		}
		pub = &bls04.PublicKey{Y: y, VK: vk, T: t, N: n}
	case schemes.KG20:
		g, err := group.ByName(r.String())
		if err != nil {
			return nil, err
		}
		y, err := readPoint(r, g)
		if err != nil {
			return nil, err
		}
		vk, err := readPoints(r, g)
		if err != nil {
			return nil, err
		}
		pub = &frost.PublicKey{Group: g, Y: y, VK: vk, T: t, N: n}
	case schemes.CKS05:
		g, err := group.ByName(r.String())
		if err != nil {
			return nil, err
		}
		y, err := readPoint(r, g)
		if err != nil {
			return nil, err
		}
		vk, err := readPoints(r, g)
		if err != nil {
			return nil, err
		}
		pub = &cks05.PublicKey{Group: g, Y: y, VK: vk, T: t, N: n}
	default:
		return nil, fmt.Errorf("keys: unknown scheme %q in key file", scheme)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return pub, nil
}

// readMaterial parses one pre-v3 record: public material, then the
// share value, indexed by the store header.
func readMaterial(r *wire.Reader, scheme schemes.ID, index, t, n int) (pub, shr any, err error) {
	pub, err = readPublic(r, scheme, t, n)
	if err != nil {
		return nil, nil, err
	}
	shr = makeShare(scheme, index, r.BigInt())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	return pub, shr, nil
}

// PublicBytes marshals the key's public material (for listings and
// cross-node comparison); nil when the material type is unknown.
func (k *Key) PublicBytes() []byte {
	w := wire.NewWriter()
	switch pk := k.Public.(type) {
	case *sg02.PublicKey:
		w.Bytes(pk.H.Marshal())
	case *bz03.PublicKey:
		w.Bytes(pk.Y.Marshal())
	case *sh00.PublicKey:
		w.BigInt(pk.N).BigInt(pk.E)
	case *bls04.PublicKey:
		w.Bytes(pk.Y.Marshal())
	case *frost.PublicKey:
		w.Bytes(pk.Y.Marshal())
	case *cks05.PublicKey:
		w.Bytes(pk.Y.Marshal())
	default:
		return nil
	}
	return w.Out()
}

func writePoints(w *wire.Writer, pts []group.Point) {
	w.Int(len(pts))
	for _, p := range pts {
		w.Bytes(p.Marshal())
	}
}

func readPoint(r *wire.Reader, g group.Group) (group.Point, error) {
	raw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return g.UnmarshalPoint(raw)
}

func readPoints(r *wire.Reader, g group.Group) ([]group.Point, error) {
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]group.Point, cnt)
	for i := 0; i < cnt; i++ {
		p, err := readPoint(r, g)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
