package keys

import (
	"fmt"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
	"thetacrypt/internal/pairing"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/bls04"
	"thetacrypt/internal/schemes/bz03"
	"thetacrypt/internal/schemes/cks05"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/schemes/sg02"
	"thetacrypt/internal/schemes/sh00"
	"thetacrypt/internal/wire"
)

// The keystore file format is versioned. Version 2 ("TKS2") carries
// named keys: a header, then one record per key. The unversioned
// legacy format (one anonymous key per scheme, written by
// pre-keychain thetakeygen) is still read: its first field is an
// 8-byte node index where v2 carries the 4-byte magic, so the two
// cannot be confused.
const (
	keystoreMagic   = "TKS2"
	keystoreVersion = 2
)

// Marshal serializes the keystore — header, then one named-key record
// per key. The encoding is the wire format used throughout the system;
// cmd/thetakeygen writes one file per node.
func (ks *Keystore) Marshal() []byte {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	w := wire.NewWriter().String(keystoreMagic).Int(keystoreVersion)
	w.Int(ks.Index).Int(ks.N).Int(ks.T)
	w.Int(len(ks.order))
	for _, k := range ks.order {
		w.String(k.ID).String(string(k.Scheme))
		writeMaterial(w, k)
	}
	return w.Out()
}

// UnmarshalKeystore parses a keystore file of either format: the
// versioned named-key format written by Marshal, or the legacy
// single-key-per-scheme format (each key loads under DefaultKeyID).
func UnmarshalKeystore(data []byte) (*Keystore, error) {
	r := wire.NewReader(data)
	if r.String() != keystoreMagic || r.Err() != nil {
		return unmarshalLegacy(data)
	}
	if v := r.Int(); v != keystoreVersion {
		return nil, fmt.Errorf("keys: unsupported keystore version %d", v)
	}
	ks := NewKeystore(r.Int(), 0, 0)
	ks.N = r.Int()
	ks.T = r.Int()
	count := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys header: %w", err)
	}
	for i := 0; i < count; i++ {
		id := r.String()
		scheme := schemes.ID(r.String())
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("keys record %d: %w", i, err)
		}
		pub, shr, err := readMaterial(r, scheme, ks.Index, ks.T, ks.N)
		if err != nil {
			return nil, fmt.Errorf("keys %s/%s: %w", scheme, id, err)
		}
		if err := ks.Add(&Key{ID: id, Scheme: scheme, Public: pub, Share: shr}); err != nil {
			return nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys: %w", err)
	}
	return ks, nil
}

// unmarshalLegacy reads the pre-keychain format: Index, N, T, then one
// anonymous record per scheme. Every key loads under DefaultKeyID, so
// existing node*.key files keep working unchanged.
func unmarshalLegacy(data []byte) (*Keystore, error) {
	r := wire.NewReader(data)
	ks := NewKeystore(r.Int(), 0, 0)
	ks.N = r.Int()
	ks.T = r.Int()
	count := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys header: %w", err)
	}
	for i := 0; i < count; i++ {
		scheme := schemes.ID(r.String())
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("keys record %d: %w", i, err)
		}
		pub, shr, err := readMaterial(r, scheme, ks.Index, ks.T, ks.N)
		if err != nil {
			return nil, fmt.Errorf("keys %s: %w", scheme, err)
		}
		if err := ks.Add(&Key{ID: DefaultKeyID, Scheme: scheme, Public: pub, Share: shr}); err != nil {
			return nil, err
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("keys: %w", err)
	}
	return ks, nil
}

// writeMaterial appends one key's cryptographic material. The
// per-scheme encodings are unchanged from the legacy format, so the
// two formats share readMaterial.
func writeMaterial(w *wire.Writer, k *Key) {
	switch k.Scheme {
	case schemes.SG02:
		pk := k.Public.(*sg02.PublicKey)
		w.String(pk.Group.Name())
		w.Bytes(pk.H.Marshal())
		writePoints(w, pk.VK)
		w.BigInt(k.Share.(sg02.KeyShare).X)
	case schemes.BZ03:
		pk := k.Public.(*bz03.PublicKey)
		w.Bytes(pk.Y.Marshal())
		w.Int(len(pk.VK))
		for _, vk := range pk.VK {
			w.Bytes(vk.Marshal())
		}
		w.BigInt(k.Share.(bz03.KeyShare).X)
	case schemes.SH00:
		pk := k.Public.(*sh00.PublicKey)
		w.BigInt(pk.N).BigInt(pk.E).BigInt(pk.V)
		w.Int(len(pk.VK))
		for _, vk := range pk.VK {
			w.BigInt(vk)
		}
		w.BigInt(k.Share.(sh00.KeyShare).S)
	case schemes.BLS04:
		pk := k.Public.(*bls04.PublicKey)
		w.Bytes(pk.Y.Marshal())
		w.Int(len(pk.VK))
		for _, vk := range pk.VK {
			w.Bytes(vk.Marshal())
		}
		w.BigInt(k.Share.(bls04.KeyShare).X)
	case schemes.KG20:
		pk := k.Public.(*frost.PublicKey)
		w.String(pk.Group.Name())
		w.Bytes(pk.Y.Marshal())
		writePoints(w, pk.VK)
		w.BigInt(k.Share.(frost.KeyShare).X)
	case schemes.CKS05:
		pk := k.Public.(*cks05.PublicKey)
		w.String(pk.Group.Name())
		w.Bytes(pk.Y.Marshal())
		writePoints(w, pk.VK)
		w.BigInt(k.Share.(cks05.KeyShare).X)
	}
}

// readMaterial parses one key's cryptographic material.
func readMaterial(r *wire.Reader, scheme schemes.ID, index, t, n int) (pub, shr any, err error) {
	switch scheme {
	case schemes.SG02:
		g, err := group.ByName(r.String())
		if err != nil {
			return nil, nil, err
		}
		h, err := readPoint(r, g)
		if err != nil {
			return nil, nil, err
		}
		vk, err := readPoints(r, g)
		if err != nil {
			return nil, nil, err
		}
		pub = &sg02.PublicKey{Group: g, H: h, VK: vk, T: t, N: n}
		shr = sg02.KeyShare{Index: index, X: r.BigInt()}
	case schemes.BZ03:
		y, ok := pairing.UnmarshalG1(r.Bytes())
		if !ok {
			return nil, nil, fmt.Errorf("bad Y")
		}
		cnt := r.Int()
		vk := make([]*pairing.G2, cnt)
		for j := 0; j < cnt; j++ {
			p, ok := pairing.UnmarshalG2(r.Bytes())
			if !ok {
				return nil, nil, fmt.Errorf("bad VK[%d]", j)
			}
			vk[j] = p
		}
		pub = &bz03.PublicKey{Y: y, VK: vk, T: t, N: n}
		shr = bz03.KeyShare{Index: index, X: r.BigInt()}
	case schemes.SH00:
		pk := &sh00.PublicKey{
			N: r.BigInt(), E: r.BigInt(), V: r.BigInt(),
			T: t, NParties: n,
		}
		cnt := r.Int()
		for j := 0; j < cnt; j++ {
			pk.VK = append(pk.VK, r.BigInt())
		}
		pk.Delta = mathutil.Factorial(n)
		pub = pk
		shr = sh00.KeyShare{Index: index, S: r.BigInt()}
	case schemes.BLS04:
		y, ok := pairing.UnmarshalG2(r.Bytes())
		if !ok {
			return nil, nil, fmt.Errorf("bad Y")
		}
		cnt := r.Int()
		vk := make([]*pairing.G2, cnt)
		for j := 0; j < cnt; j++ {
			p, ok := pairing.UnmarshalG2(r.Bytes())
			if !ok {
				return nil, nil, fmt.Errorf("bad VK[%d]", j)
			}
			vk[j] = p
		}
		pub = &bls04.PublicKey{Y: y, VK: vk, T: t, N: n}
		shr = bls04.KeyShare{Index: index, X: r.BigInt()}
	case schemes.KG20:
		g, err := group.ByName(r.String())
		if err != nil {
			return nil, nil, err
		}
		y, err := readPoint(r, g)
		if err != nil {
			return nil, nil, err
		}
		vk, err := readPoints(r, g)
		if err != nil {
			return nil, nil, err
		}
		pub = &frost.PublicKey{Group: g, Y: y, VK: vk, T: t, N: n}
		shr = frost.KeyShare{Index: index, X: r.BigInt()}
	case schemes.CKS05:
		g, err := group.ByName(r.String())
		if err != nil {
			return nil, nil, err
		}
		y, err := readPoint(r, g)
		if err != nil {
			return nil, nil, err
		}
		vk, err := readPoints(r, g)
		if err != nil {
			return nil, nil, err
		}
		pub = &cks05.PublicKey{Group: g, Y: y, VK: vk, T: t, N: n}
		shr = cks05.KeyShare{Index: index, X: r.BigInt()}
	default:
		return nil, nil, fmt.Errorf("keys: unknown scheme %q in key file", scheme)
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	return pub, shr, nil
}

// PublicBytes marshals the key's public material (for listings and
// cross-node comparison); nil when the material type is unknown.
func (k *Key) PublicBytes() []byte {
	w := wire.NewWriter()
	switch pk := k.Public.(type) {
	case *sg02.PublicKey:
		w.Bytes(pk.H.Marshal())
	case *bz03.PublicKey:
		w.Bytes(pk.Y.Marshal())
	case *sh00.PublicKey:
		w.BigInt(pk.N).BigInt(pk.E)
	case *bls04.PublicKey:
		w.Bytes(pk.Y.Marshal())
	case *frost.PublicKey:
		w.Bytes(pk.Y.Marshal())
	case *cks05.PublicKey:
		w.Bytes(pk.Y.Marshal())
	default:
		return nil
	}
	return w.Out()
}

func writePoints(w *wire.Writer, pts []group.Point) {
	w.Int(len(pts))
	for _, p := range pts {
		w.Bytes(p.Marshal())
	}
}

func readPoint(r *wire.Reader, g group.Group) (group.Point, error) {
	raw := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return g.UnmarshalPoint(raw)
}

func readPoints(r *wire.Reader, g group.Group) ([]group.Point, error) {
	cnt := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]group.Point, cnt)
	for i := 0; i < cnt; i++ {
		p, err := readPoint(r, g)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
