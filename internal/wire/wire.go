// Package wire provides a minimal length-prefixed binary encoding used
// for scheme shares, ciphertexts, and protocol messages. It replaces the
// Protocol Buffers serialization of the original system with a
// self-contained stdlib equivalent: every value is written as a 4-byte
// big-endian length followed by the raw bytes, so encodings are
// unambiguous and platform independent.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// ErrTruncated is returned when a reader runs out of input.
var ErrTruncated = errors.New("wire: truncated input")

const maxChunk = 1 << 24 // 16 MiB sanity cap per field

// Writer accumulates length-prefixed fields.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes appends a byte field.
func (w *Writer) Bytes(b []byte) *Writer {
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(b)))
	w.buf = append(w.buf, lenbuf[:]...)
	w.buf = append(w.buf, b...)
	return w
}

// BigInt appends a non-negative big integer field. Negative values are
// encoded with a sign byte so Shoup-style integer values survive.
func (w *Writer) BigInt(v *big.Int) *Writer {
	sign := byte(0)
	if v.Sign() < 0 {
		sign = 1
	}
	return w.Bytes(append([]byte{sign}, v.Bytes()...))
}

// Int appends a small integer field.
func (w *Writer) Int(v int) *Writer {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(int64(v)))
	return w.Bytes(b[:])
}

// Uint64 appends an unsigned 64-bit field (sequence numbers, epochs).
func (w *Writer) Uint64(v uint64) *Writer {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return w.Bytes(b[:])
}

// String appends a string field.
func (w *Writer) String(s string) *Writer { return w.Bytes([]byte(s)) }

// Out returns the accumulated encoding.
func (w *Writer) Out() []byte { return w.buf }

// Reader consumes length-prefixed fields.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps an encoded buffer.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decoding error encountered.
func (r *Reader) Err() error { return r.err }

// Done reports whether the whole buffer was consumed without error.
func (r *Reader) Done() bool { return r.err == nil && r.off == len(r.buf) }

// Bytes reads the next byte field.
func (r *Reader) Bytes() []byte {
	if r.err != nil {
		return nil
	}
	if r.off+4 > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	n := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	if n > maxChunk {
		r.err = fmt.Errorf("wire: field of %d bytes exceeds cap", n)
		return nil
	}
	if r.off+int(n) > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// BigInt reads a big integer field.
func (r *Reader) BigInt() *big.Int {
	b := r.Bytes()
	if r.err != nil {
		return nil
	}
	if len(b) == 0 {
		r.err = fmt.Errorf("wire: empty big integer field")
		return nil
	}
	v := new(big.Int).SetBytes(b[1:])
	if b[0] == 1 {
		v.Neg(v)
	}
	return v
}

// Int reads a small integer field.
func (r *Reader) Int() int {
	b := r.Bytes()
	if r.err != nil {
		return 0
	}
	if len(b) != 8 {
		r.err = fmt.Errorf("wire: bad int field length %d", len(b))
		return 0
	}
	return int(int64(binary.BigEndian.Uint64(b)))
}

// Uint64 reads an unsigned 64-bit field.
func (r *Reader) Uint64() uint64 {
	b := r.Bytes()
	if r.err != nil {
		return 0
	}
	if len(b) != 8 {
		r.err = fmt.Errorf("wire: bad uint64 field length %d", len(b))
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// String reads a string field.
func (r *Reader) String() string { return string(r.Bytes()) }
