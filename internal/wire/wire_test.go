package wire

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter().
		Bytes([]byte("hello")).
		BigInt(big.NewInt(123456789)).
		BigInt(big.NewInt(-42)).
		Int(-7).
		String("world").
		Bytes(nil)
	r := NewReader(w.Out())
	if got := r.Bytes(); string(got) != "hello" {
		t.Fatalf("bytes = %q", got)
	}
	if got := r.BigInt(); got.Int64() != 123456789 {
		t.Fatalf("bigint = %v", got)
	}
	if got := r.BigInt(); got.Int64() != -42 {
		t.Fatalf("negative bigint = %v", got)
	}
	if got := r.Int(); got != -7 {
		t.Fatalf("int = %d", got)
	}
	if got := r.String(); got != "world" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty bytes = %v", got)
	}
	if !r.Done() {
		t.Fatalf("reader not done: %v", r.Err())
	}
}

func TestTruncation(t *testing.T) {
	enc := NewWriter().Bytes([]byte("abcdef")).Out()
	for cut := 0; cut < len(enc); cut++ {
		r := NewReader(enc[:cut])
		r.Bytes()
		if r.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestZeroBigInt(t *testing.T) {
	enc := NewWriter().BigInt(new(big.Int)).Out()
	r := NewReader(enc)
	if got := r.BigInt(); r.Err() != nil || got.Sign() != 0 {
		t.Fatalf("zero round trip: %v %v", got, r.Err())
	}
}

func TestReaderErrorsSticky(t *testing.T) {
	r := NewReader([]byte{0, 0})
	r.Bytes() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads must not panic and keep the error.
	r.BigInt()
	r.Int()
	_ = r.String()
	if r.Err() == nil || r.Done() {
		t.Fatal("error not sticky")
	}
}

func TestBadIntWidth(t *testing.T) {
	enc := NewWriter().Bytes([]byte{1, 2, 3}).Out()
	r := NewReader(enc)
	r.Int()
	if r.Err() == nil {
		t.Fatal("3-byte int field accepted")
	}
}

func TestQuickRoundTripBigInts(t *testing.T) {
	f := func(v int64) bool {
		enc := NewWriter().BigInt(big.NewInt(v)).Out()
		r := NewReader(enc)
		got := r.BigInt()
		return r.Done() && got.Int64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
