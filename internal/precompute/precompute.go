// Package precompute is the amortization layer under the threshold
// schemes: work whose cost does not depend on the request payload is
// done once (or off the critical path) and reused across requests.
//
// Three mechanisms, one suite:
//
//   - Cache memoizes Lagrange coefficient maps keyed by (scheme, key,
//     epoch, canonical signer subset), replacing the per-call
//     recomputation in the schemes' combine and share-verification
//     paths.
//   - BatchVerifier folds the linear point relations of pending share
//     proofs (DLEQ, FROST share equations) into one random-linear-
//     combination multi-scalar multiplication, falling back to
//     per-proof verification on batch failure so signer attribution is
//     preserved. Concurrent requests against the engine coalesce into
//     shared batches.
//   - NoncePool banks FROST (D, E) nonce pairs and the committee's
//     commitments during idle time, making the online signing path a
//     single message round. Nonces are epoch-scoped and consumed
//     before signing, so they are never reused and a reshare
//     invalidates them structurally.
//
// Everything is keyed by the key's epoch: material precomputed under an
// old sharing can never be combined with shares of a new one (Gennaro
// et al.'s binding requirement for preprocessed material under
// proactive resharing).
package precompute

import (
	"io"

	"thetacrypt/internal/schemes/frost"
)

// Options configures a Suite.
type Options struct {
	// CoeffCap bounds the number of cached coefficient maps (default
	// 1024, oldest evicted first).
	CoeffCap int
	// PoolDepth is the target number of banked FROST nonces per
	// (key, epoch); zero disables the nonce pool.
	PoolDepth int
	// PoolRefill is the low-water mark that triggers a refill (default
	// PoolDepth/2, minimum 1 when the pool is enabled).
	PoolRefill int
}

func (o *Options) fill() {
	if o.CoeffCap <= 0 {
		o.CoeffCap = 1024
	}
	if o.PoolDepth > 0 && o.PoolRefill <= 0 {
		o.PoolRefill = o.PoolDepth / 2
	}
	if o.PoolDepth > 0 && o.PoolRefill < 1 {
		o.PoolRefill = 1
	}
	if o.PoolRefill > o.PoolDepth {
		o.PoolRefill = o.PoolDepth
	}
}

// Stats is a point-in-time snapshot of the suite's counters, exported
// through the engine's stats and /v2/info.
type Stats struct {
	LagrangeHits      int64
	LagrangeMisses    int64
	NoncePoolDepth    int
	NonceRefills      int64
	NonceExhaustions  int64
	BatchesVerified   int64
	BatchedRelations  int64
	MaxBatch          int
	BatchFallbacks    int64
	CoalescedRequests int64
}

// Suite bundles the three mechanisms behind one handle the engine owns
// and threads into every protocol instance. A nil *Suite is valid and
// disables all precomputation (direct computation everywhere).
type Suite struct {
	coeffs *Cache
	pool   *NoncePool
	batch  *BatchVerifier
}

// NewSuite builds a suite. rand seeds the batch verifier's random
// linear combinations.
func NewSuite(rand io.Reader, opts Options) *Suite {
	opts.fill()
	var pool *NoncePool
	if opts.PoolDepth > 0 {
		pool = newNoncePool(rand, opts.PoolDepth, opts.PoolRefill)
	}
	return &Suite{
		coeffs: newCache(opts.CoeffCap),
		pool:   pool,
		batch:  newBatchVerifier(rand),
	}
}

// Coefficients returns the cached coefficient source bound to one
// (scheme, key, epoch); nil (direct computation) on a nil suite.
func (s *Suite) Coefficients(scheme, keyID string, epoch int) CoeffSource {
	if s == nil {
		return CoeffSource{}
	}
	return CoeffSource{cache: s.coeffs, scheme: scheme, keyID: keyID, epoch: epoch}
}

// Verifier returns the shared batch verifier (nil on a nil suite; a
// nil *BatchVerifier verifies directly).
func (s *Suite) Verifier() *BatchVerifier {
	if s == nil {
		return nil
	}
	return s.batch
}

// NoncePool returns the FROST nonce pool, nil when pooling is disabled.
func (s *Suite) NoncePool() *NoncePool {
	if s == nil {
		return nil
	}
	return s.pool
}

// Invalidate drops all material of the named key precomputed under an
// epoch older than keepEpoch — the reshare-finalization hook. Lookups
// are epoch-keyed, so this is memory hygiene rather than a correctness
// requirement: stale entries could never be returned for the new epoch.
func (s *Suite) Invalidate(scheme, keyID string, keepEpoch int) {
	if s == nil {
		return
	}
	s.coeffs.invalidate(scheme, keyID, keepEpoch)
	if s.pool != nil {
		s.pool.invalidate(scheme, keyID, keepEpoch)
	}
}

// Stats snapshots all counters.
func (s *Suite) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	st := Stats{
		LagrangeHits:      s.coeffs.hits.Load(),
		LagrangeMisses:    s.coeffs.misses.Load(),
		BatchesVerified:   s.batch.batches.Load(),
		BatchedRelations:  s.batch.relations.Load(),
		MaxBatch:          int(s.batch.maxBatch.Load()),
		BatchFallbacks:    s.batch.fallbacks.Load(),
		CoalescedRequests: s.batch.coalesced.Load(),
	}
	if s.pool != nil {
		st.NoncePoolDepth = s.pool.TotalDepth()
		st.NonceRefills = s.pool.refills.Load()
		st.NonceExhaustions = s.pool.exhaustions.Load()
	}
	return st
}

// nonceBankKey scopes banked material to one key epoch.
type nonceBankKey struct {
	scheme string
	keyID  string
	epoch  int
}

// nonceBank is the per-(key, epoch) store: this node's secret nonces by
// sequence number plus every member's observed commitments.
type nonceBank struct {
	// run is the refill initiator's per-boot namespace id this bank's
	// sequence numbers live in. A refill under a different run replaces
	// the bank wholesale (the initiator restarted; see NoncePool).
	run uint64
	// nextSeq is the first sequence number not yet assigned locally
	// within run; refills below it are ignored so a sequence number is
	// banked (and hence consumable) at most once per node and run.
	nextSeq uint64
	own     map[uint64]*frost.Nonce
	comms   map[uint64]map[int]*frost.NonceCommitment
}
