package precompute

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"
	"sync"
	"sync/atomic"

	"thetacrypt/internal/group"
	"thetacrypt/internal/mathutil"
)

// ErrRelation is the per-item verdict after a failed batch is replayed
// individually: these relations do not hold. Callers wrap it with their
// scheme-level rejection (attribution is theirs — each Verify call
// covers exactly one share's relations).
var ErrRelation = errors.New("precompute: relation does not hold")

// batchItem is one caller's pending verification: its relations and the
// channel its verdict is delivered on.
type batchItem struct {
	g    group.Group
	rels []group.Relation
	done chan error
}

// BatchVerifier folds the linear relations of concurrently pending
// proofs into one random-linear-combination multi-scalar multiplication
// per group. Scheduling is caller-becomes-flusher single-flight: the
// first caller to arrive while no flush is running drains the queue and
// verifies for everyone; callers arriving mid-flush park their items
// and are picked up by the next drain, so batches form exactly when the
// engine is processing shares concurrently and a lone caller pays no
// added latency. A flushing caller verifies exactly one batch — the one
// holding its own item — and hands any work that piled up meanwhile to
// a detached drainer, so no request's latency grows with other callers'
// traffic. A failed batch is replayed item by item, preserving
// per-share attribution. A nil *BatchVerifier verifies directly.
type BatchVerifier struct {
	rand io.Reader

	mu       sync.Mutex
	pending  []*batchItem
	flushing bool

	batches   atomic.Int64
	relations atomic.Int64
	fallbacks atomic.Int64
	coalesced atomic.Int64
	maxBatch  atomic.Int64
}

func newBatchVerifier(r io.Reader) *BatchVerifier {
	if r == nil {
		r = rand.Reader
	}
	return &BatchVerifier{rand: r}
}

// Verify checks that every relation holds, batching with whatever else
// is pending. It blocks until this caller's verdict is known and
// returns nil or ErrRelation.
func (b *BatchVerifier) Verify(g group.Group, rels []group.Relation) error {
	if len(rels) == 0 {
		return nil
	}
	if b == nil {
		return checkDirect(g, rels)
	}
	it := &batchItem{g: g, rels: rels, done: make(chan error, 1)}
	b.mu.Lock()
	b.pending = append(b.pending, it)
	if b.flushing {
		b.mu.Unlock()
		return <-it.done
	}
	b.flushing = true
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	// This batch contains the caller's own item, so its verdict is known
	// once the flush returns. Items that arrived mid-flush go to a
	// detached drainer instead of this caller: under sustained traffic a
	// caller that kept draining could flush other requests' batches
	// indefinitely, giving one unlucky request unbounded tail latency.
	b.flush(batch)
	b.mu.Lock()
	if len(b.pending) == 0 {
		b.flushing = false
		b.mu.Unlock()
	} else {
		b.mu.Unlock()
		go b.drain()
	}
	return <-it.done
}

// drain flushes pending batches until the queue is observed empty; the
// flushing flag stays set for the whole time, so exactly one goroutine
// — a caller or a drainer — owns the queue at any moment and every
// parked item is eventually verified even if no further caller arrives.
func (b *BatchVerifier) drain() {
	for {
		b.mu.Lock()
		batch := b.pending
		b.pending = nil
		if len(batch) == 0 {
			b.flushing = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		b.flush(batch)
	}
}

func checkDirect(g group.Group, rels []group.Relation) error {
	for _, rel := range rels {
		if !rel.Holds(g) {
			return ErrRelation
		}
	}
	return nil
}

// flush verifies one drained batch: per distinct group, every pending
// relation is scaled by a fresh 128-bit multiplier and folded into a
// single multi-scalar multiplication. If the folded sum is the identity
// all items pass (a forged share would need to guess the multipliers);
// otherwise each item is replayed individually so exactly the bad
// shares are rejected.
func (b *BatchVerifier) flush(batch []*batchItem) {
	b.batches.Add(1)
	if n := int64(len(batch)); n > b.maxBatch.Load() {
		b.maxBatch.Store(n)
	}
	if len(batch) > 1 {
		b.coalesced.Add(int64(len(batch) - 1))
	}
	byGroup := make(map[string][]*batchItem)
	groups := make(map[string]group.Group)
	for _, it := range batch {
		name := it.g.Name()
		byGroup[name] = append(byGroup[name], it)
		groups[name] = it.g
		b.relations.Add(int64(len(it.rels)))
	}
	for name, items := range byGroup {
		b.flushGroup(groups[name], items)
	}
}

var batchMultiplierBound = new(big.Int).Lsh(big.NewInt(1), 128)

func (b *BatchVerifier) flushGroup(g group.Group, items []*batchItem) {
	var pts []group.Point
	var scalars []*big.Int
	order := g.Order()
	for _, it := range items {
		for _, rel := range it.rels {
			r, err := mathutil.RandInt(b.rand, batchMultiplierBound)
			if err != nil {
				// No randomness, no RLC soundness: replay everything
				// individually.
				b.fallbackGroup(g, items)
				return
			}
			r.Add(r, big.NewInt(1)) // never zero out a relation
			for i, p := range rel.Points {
				pts = append(pts, p)
				scalars = append(scalars, mathutil.MulMod(rel.Scalars[i], r, order))
			}
		}
	}
	if group.MultiScalarMul(g, pts, scalars).IsIdentity() {
		for _, it := range items {
			it.done <- nil
		}
		return
	}
	b.fallbackGroup(g, items)
}

func (b *BatchVerifier) fallbackGroup(g group.Group, items []*batchItem) {
	b.fallbacks.Add(1)
	for _, it := range items {
		it.done <- checkDirect(g, it.rels)
	}
}
