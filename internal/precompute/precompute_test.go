package precompute

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"

	"thetacrypt/internal/group"
	"thetacrypt/internal/schemes/frost"
	"thetacrypt/internal/share"
)

// --- Lagrange coefficient cache ---

func TestCacheHitMissAndPermutation(t *testing.T) {
	s := NewSuite(rand.Reader, Options{})
	g := group.Edwards25519()
	src := s.Coefficients("KG20", "k", 1)

	m1, err := src.Lagrange([]int{3, 1, 2}, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	// A permutation (and a duplicate) of the same subset must hit the
	// same entry.
	m2, err := src.Lagrange([]int{1, 2, 3, 2}, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	for idx := 1; idx <= 3; idx++ {
		if m1[idx].Cmp(m2[idx]) != 0 {
			t.Fatalf("coefficient for %d differs between permutations", idx)
		}
	}
	st := s.Stats()
	if st.LagrangeMisses != 1 || st.LagrangeHits != 1 {
		t.Fatalf("want 1 miss + 1 hit, got misses=%d hits=%d", st.LagrangeMisses, st.LagrangeHits)
	}

	// Cached values must agree with direct computation.
	direct, err := share.Coefficients([]int{1, 2, 3}, g.Order())
	if err != nil {
		t.Fatal(err)
	}
	for idx, want := range direct {
		if m1[idx].Cmp(want) != 0 {
			t.Fatalf("cached coefficient for %d disagrees with direct computation", idx)
		}
	}
}

func TestCacheEpochAndKeyIsolation(t *testing.T) {
	s := NewSuite(rand.Reader, Options{})
	g := group.Edwards25519()
	subset := []int{1, 2}

	if _, err := s.Coefficients("KG20", "k", 1).Lagrange(subset, g.Order()); err != nil {
		t.Fatal(err)
	}
	// A different epoch and a different key must each miss.
	if _, err := s.Coefficients("KG20", "k", 2).Lagrange(subset, g.Order()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Coefficients("KG20", "other", 1).Lagrange(subset, g.Order()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LagrangeMisses != 3 || st.LagrangeHits != 0 {
		t.Fatalf("want 3 misses + 0 hits, got misses=%d hits=%d", st.LagrangeMisses, st.LagrangeHits)
	}
}

func TestCacheInvalidateDropsOldEpochs(t *testing.T) {
	s := NewSuite(rand.Reader, Options{})
	g := group.Edwards25519()
	subset := []int{1, 2}
	for epoch := 1; epoch <= 3; epoch++ {
		if _, err := s.Coefficients("KG20", "k", epoch).Lagrange(subset, g.Order()); err != nil {
			t.Fatal(err)
		}
	}
	s.Invalidate("KG20", "k", 3)
	// Epochs 1 and 2 were dropped; epoch 3 survives.
	if _, err := s.Coefficients("KG20", "k", 3).Lagrange(subset, g.Order()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LagrangeHits != 1 {
		t.Fatalf("epoch-3 entry should have survived invalidation, hits=%d", st.LagrangeHits)
	}
	if _, err := s.Coefficients("KG20", "k", 2).Lagrange(subset, g.Order()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LagrangeMisses != 4 {
		t.Fatalf("epoch-2 entry should have been dropped, misses=%d", st.LagrangeMisses)
	}
}

func TestCacheEviction(t *testing.T) {
	s := NewSuite(rand.Reader, Options{CoeffCap: 2})
	g := group.Edwards25519()
	for epoch := 1; epoch <= 3; epoch++ {
		if _, err := s.Coefficients("KG20", "k", epoch).Lagrange([]int{1, 2}, g.Order()); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1 is the oldest entry and must have been evicted.
	if _, err := s.Coefficients("KG20", "k", 1).Lagrange([]int{1, 2}, g.Order()); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LagrangeMisses != 4 {
		t.Fatalf("want 4 misses after eviction, got %d", st.LagrangeMisses)
	}
}

func TestNilSuiteIsDirect(t *testing.T) {
	var s *Suite
	g := group.Edwards25519()
	m, err := s.Coefficients("KG20", "k", 1).Lagrange([]int{1, 2}, g.Order())
	if err != nil || len(m) != 2 {
		t.Fatalf("nil suite must compute directly, got %v, %v", m, err)
	}
	if s.Verifier() != nil || s.NoncePool() != nil {
		t.Fatal("nil suite must hand out nil verifier and pool")
	}
	s.Invalidate("KG20", "k", 1)
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil suite stats must be zero, got %+v", st)
	}
}

// --- Batch verifier ---

// relFor builds a true relation a*G + (-a)*G == 0 with a fresh scalar.
func relFor(t *testing.T, g group.Group) group.Relation {
	t.Helper()
	a, err := g.RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	neg := new(big.Int).Sub(g.Order(), a)
	return group.Relation{
		Points:  []group.Point{g.Generator(), g.Generator()},
		Scalars: []*big.Int{a, neg},
	}
}

// badRel builds a relation that does not hold.
func badRel(g group.Group) group.Relation {
	return group.Relation{
		Points:  []group.Point{g.Generator()},
		Scalars: []*big.Int{big.NewInt(1)},
	}
}

func TestBatchVerifyPassesAndFailsWithAttribution(t *testing.T) {
	s := NewSuite(rand.Reader, Options{})
	b := s.Verifier()
	g := group.Edwards25519()

	if err := b.Verify(g, []group.Relation{relFor(t, g), relFor(t, g)}); err != nil {
		t.Fatalf("true relations rejected: %v", err)
	}
	if err := b.Verify(g, []group.Relation{relFor(t, g), badRel(g)}); err != ErrRelation {
		t.Fatalf("false relation accepted: %v", err)
	}
	if st := s.Stats(); st.BatchFallbacks == 0 {
		t.Fatal("failed batch should have been replayed individually")
	}
}

func TestBatchVerifyCoalescesConcurrentCallers(t *testing.T) {
	s := NewSuite(rand.Reader, Options{})
	b := s.Verifier()
	g := group.Edwards25519()

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Verify(g, []group.Relation{relFor(t, g)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d rejected: %v", i, err)
		}
	}
	st := s.Stats()
	if st.BatchedRelations != callers {
		t.Fatalf("want %d relations verified, got %d", callers, st.BatchedRelations)
	}
	// Coalescing is scheduling-dependent; what must hold is conservation:
	// every caller is accounted for either as a flush or as a coalesced
	// rider, and no batch exceeded the caller count.
	if st.BatchesVerified+st.CoalescedRequests != callers {
		t.Fatalf("batches %d + coalesced %d != callers %d",
			st.BatchesVerified, st.CoalescedRequests, callers)
	}
	if st.MaxBatch < 1 || st.MaxBatch > callers {
		t.Fatalf("max batch %d out of range", st.MaxBatch)
	}
}

func TestBatchVerifyFailureOnlyRejectsBadCaller(t *testing.T) {
	s := NewSuite(rand.Reader, Options{})
	b := s.Verifier()
	g := group.Edwards25519()

	// One bad caller among many good ones: attribution must be exact
	// regardless of how the callers landed in batches.
	const good = 8
	var wg sync.WaitGroup
	goodErrs := make([]error, good)
	var badErr error
	for i := 0; i < good; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			goodErrs[i] = b.Verify(g, []group.Relation{relFor(t, g)})
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		badErr = b.Verify(g, []group.Relation{badRel(g)})
	}()
	wg.Wait()
	for i, err := range goodErrs {
		if err != nil {
			t.Fatalf("good caller %d rejected: %v", i, err)
		}
	}
	if badErr != ErrRelation {
		t.Fatalf("bad caller accepted: %v", badErr)
	}
}

func TestNilBatchVerifierIsDirect(t *testing.T) {
	var b *BatchVerifier
	g := group.Edwards25519()
	if err := b.Verify(g, []group.Relation{relFor(t, g)}); err != nil {
		t.Fatalf("nil verifier rejected a true relation: %v", err)
	}
	if err := b.Verify(g, []group.Relation{badRel(g)}); err != ErrRelation {
		t.Fatalf("nil verifier accepted a false relation: %v", err)
	}
}

// --- FROST nonce pool ---

// bankFor fills a pool bank for members 1..n with count slots under
// refill run `run`.
func bankFor(t *testing.T, p *NoncePool, scheme, keyID string, epoch, n, count int, run, base uint64) {
	t.Helper()
	g := group.Edwards25519()
	for idx := 1; idx <= n; idx++ {
		nonces, comms, err := frost.Precompute(rand.Reader, g, idx, count)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 1 {
			p.BankOwn(scheme, keyID, epoch, run, base, nonces, comms)
		} else {
			p.Observe(scheme, keyID, epoch, run, base, comms)
		}
	}
}

func TestNoncePoolAcquireConsumes(t *testing.T) {
	s := NewSuite(rand.Reader, Options{PoolDepth: 4})
	p := s.NoncePool()
	bankFor(t, p, "KG20", "k", 1, 3, 4, p.run, 0)

	if d := p.DepthOf("KG20", "k", 1); d != 4 {
		t.Fatalf("banked depth = %d, want 4", d)
	}
	seq, nonce, comms, ok := p.Acquire("KG20", "k", 1, []int{1, 2})
	if !ok || nonce == nil || len(comms) != 2 {
		t.Fatalf("acquire failed: ok=%v comms=%d", ok, len(comms))
	}
	if seq != 0 {
		t.Fatalf("lowest slot should be consumed first, got seq %d", seq)
	}
	if d := p.DepthOf("KG20", "k", 1); d != 3 {
		t.Fatalf("depth after acquire = %d, want 3", d)
	}
	// The consumed slot is gone for good: a follower cannot claim it.
	if _, _, ok := p.Claim("KG20", "k", 1, seq, 1); ok {
		t.Fatal("consumed slot claimable again — nonce reuse")
	}
}

func TestNoncePoolClaimConsumes(t *testing.T) {
	s := NewSuite(rand.Reader, Options{PoolDepth: 2})
	p := s.NoncePool()
	bankFor(t, p, "KG20", "k", 1, 3, 2, p.run, 0)

	nonce, own, ok := p.Claim("KG20", "k", 1, 1, 1)
	if !ok || nonce == nil || own == nil {
		t.Fatalf("claim failed: ok=%v", ok)
	}
	if _, _, ok := p.Claim("KG20", "k", 1, 1, 1); ok {
		t.Fatal("slot claimable twice — nonce reuse")
	}
	if d := p.DepthOf("KG20", "k", 1); d != 1 {
		t.Fatalf("depth after claim = %d, want 1", d)
	}
}

func TestNoncePoolExhaustionAndIncompleteSlots(t *testing.T) {
	s := NewSuite(rand.Reader, Options{PoolDepth: 2})
	p := s.NoncePool()
	g := group.Edwards25519()

	// Bank own nonces but only member 2's commitments: slots are
	// incomplete for signer set {1, 3} and must not be acquirable.
	nonces, comms, err := frost.Precompute(rand.Reader, g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.BankOwn("KG20", "k", 1, p.run, 0, nonces, comms)
	n2, c2, err := frost.Precompute(rand.Reader, g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = n2
	p.Observe("KG20", "k", 1, p.run, 0, c2)

	if _, _, _, ok := p.Acquire("KG20", "k", 1, []int{1, 3}); ok {
		t.Fatal("acquired a slot missing signer 3's commitment")
	}
	if st := s.Stats(); st.NonceExhaustions != 1 {
		t.Fatalf("exhaustions = %d, want 1", st.NonceExhaustions)
	}
	// The same slots are complete for {1, 2}.
	if _, _, _, ok := p.Acquire("KG20", "k", 1, []int{1, 2}); !ok {
		t.Fatal("complete slot not acquirable")
	}
}

func TestNoncePoolRefillWatermark(t *testing.T) {
	s := NewSuite(rand.Reader, Options{PoolDepth: 4, PoolRefill: 2})
	p := s.NoncePool()

	_, base, count, need := p.NeedRefill("KG20", "k", 1)
	if !need || base != 0 || count != 4 {
		t.Fatalf("empty bank: need=%v base=%d count=%d, want refill of 4 from 0", need, base, count)
	}
	bankFor(t, p, "KG20", "k", 1, 2, 4, p.run, 0)
	if _, _, _, need := p.NeedRefill("KG20", "k", 1); need {
		t.Fatal("full bank should not need a refill")
	}
	// Consume down to the watermark.
	p.Acquire("KG20", "k", 1, []int{1, 2})
	p.Acquire("KG20", "k", 1, []int{1, 2})
	p.Acquire("KG20", "k", 1, []int{1, 2})
	_, base, count, need = p.NeedRefill("KG20", "k", 1)
	if !need || base != 4 || count != 3 {
		t.Fatalf("depleted bank: need=%v base=%d count=%d, want refill of 3 from 4", need, base, count)
	}
}

func TestNoncePoolReplayCannotResurrect(t *testing.T) {
	s := NewSuite(rand.Reader, Options{PoolDepth: 2})
	p := s.NoncePool()
	g := group.Edwards25519()
	nonces, comms, err := frost.Precompute(rand.Reader, g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.BankOwn("KG20", "k", 1, p.run, 0, nonces, comms)
	if _, _, ok := p.Claim("KG20", "k", 1, 0, 1); !ok {
		t.Fatal("claim failed")
	}
	// Replaying the same refill must not resurrect the consumed slot.
	p.BankOwn("KG20", "k", 1, p.run, 0, nonces, comms)
	if _, _, ok := p.Claim("KG20", "k", 1, 0, 1); ok {
		t.Fatal("replayed refill resurrected a consumed nonce")
	}
}

// TestNoncePoolRestartedInitiatorOpensFreshRun: the refill initiator's
// sequence counter is volatile, so after a restart it proposes base 0
// again — under a NEW per-boot run id. Followers must re-bank those
// sequence numbers in the fresh namespace instead of skipping them via
// the high-water-mark guard (skipping while still broadcasting
// commitments is the divergence that hard-fails every later pooled
// round), and the old run's slots — unusable since the initiator lost
// its secrets — must be dropped with the reset.
func TestNoncePoolRestartedInitiatorOpensFreshRun(t *testing.T) {
	s := NewSuite(rand.Reader, Options{PoolDepth: 2})
	p := s.NoncePool()

	// Life 1 of the initiator: run A banks seqs 0..1; one is consumed.
	bankFor(t, p, "KG20", "k", 1, 2, 2, 111, 0)
	if _, _, _, ok := p.Acquire("KG20", "k", 1, []int{1, 2}); !ok {
		t.Fatal("run-A slot not acquirable")
	}

	// Life 2: the restarted initiator proposes base 0 again, run B.
	bankFor(t, p, "KG20", "k", 1, 2, 2, 222, 0)
	if d := p.DepthOf("KG20", "k", 1); d != 2 {
		t.Fatalf("run-B refill banked depth %d, want 2 (old run dropped, base 0 re-banked)", d)
	}
	seq, nonce, comms, ok := p.Acquire("KG20", "k", 1, []int{1, 2})
	if !ok || nonce == nil || len(comms) != 2 {
		t.Fatalf("run-B slot not acquirable: ok=%v", ok)
	}
	if seq != 0 {
		t.Fatalf("run-B sequence numbers must restart at 0, got %d", seq)
	}
	// Consume-once still holds within the new run.
	if _, _, ok := p.Claim("KG20", "k", 1, seq, 1); ok {
		t.Fatal("consumed run-B slot claimable again")
	}
}

func TestNoncePoolEpochInvalidation(t *testing.T) {
	s := NewSuite(rand.Reader, Options{PoolDepth: 2})
	p := s.NoncePool()
	bankFor(t, p, "KG20", "k", 1, 2, 2, p.run, 0)
	bankFor(t, p, "KG20", "k", 2, 2, 2, p.run, 0)

	// Epoch keying alone already prevents cross-epoch use.
	if _, _, _, ok := p.Acquire("KG20", "k", 3, []int{1, 2}); ok {
		t.Fatal("acquired material for an epoch never banked")
	}
	s.Invalidate("KG20", "k", 2)
	if d := p.DepthOf("KG20", "k", 1); d != 0 {
		t.Fatalf("old epoch survived invalidation, depth %d", d)
	}
	if d := p.DepthOf("KG20", "k", 2); d != 2 {
		t.Fatalf("current epoch dropped by invalidation, depth %d", d)
	}
}

func TestPoolDisabled(t *testing.T) {
	s := NewSuite(rand.Reader, Options{})
	if s.NoncePool().Enabled() {
		t.Fatal("pool enabled without PoolDepth")
	}
	if _, _, _, need := s.NoncePool().NeedRefill("KG20", "k", 1); need {
		t.Fatal("disabled pool wants a refill")
	}
	if _, _, _, ok := s.NoncePool().Acquire("KG20", "k", 1, []int{1}); ok {
		t.Fatal("disabled pool handed out a nonce")
	}
}

// --- Benchmarks: the amortization wins the PR claims ---

func BenchmarkLagrangeDirect(b *testing.B) {
	g := group.Edwards25519()
	subset := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := share.Coefficients(subset, g.Order()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLagrangeCached(b *testing.B) {
	s := NewSuite(rand.Reader, Options{})
	g := group.Edwards25519()
	src := s.Coefficients("KG20", "k", 1)
	subset := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := src.Lagrange(subset, g.Order()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRels(b *testing.B, g group.Group, n int) [][]group.Relation {
	b.Helper()
	out := make([][]group.Relation, n)
	for i := range out {
		a, err := g.RandomScalar(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		neg := new(big.Int).Sub(g.Order(), a)
		out[i] = []group.Relation{{
			Points:  []group.Point{g.Generator(), g.Generator()},
			Scalars: []*big.Int{a, neg},
		}}
	}
	return out
}

func BenchmarkVerifyIndividual(b *testing.B) {
	g := group.Edwards25519()
	rels := benchRels(b, g, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rels {
			if err := checkDirect(g, r); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatchVerify(b *testing.B) {
	g := group.Edwards25519()
	v := newBatchVerifier(rand.Reader)
	rels := benchRels(b, g, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, r := range rels {
			wg.Add(1)
			go func(r []group.Relation) {
				defer wg.Done()
				if err := v.Verify(g, r); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

func BenchmarkNoncePoolAcquire(b *testing.B) {
	g := group.Edwards25519()
	p := newNoncePool(rand.Reader, 64, 32)
	signers := []int{1, 2}
	// Pre-bank b.N slots outside the timer.
	for idx := 1; idx <= 2; idx++ {
		batch := 1024
		var all []*frost.Nonce
		var comms []*frost.NonceCommitment
		for len(all) < b.N {
			ns, cs, err := frost.Precompute(rand.Reader, g, idx, batch)
			if err != nil {
				b.Fatal(err)
			}
			all, comms = append(all, ns...), append(comms, cs...)
		}
		if idx == 1 {
			p.BankOwn("KG20", "k", 1, p.run, 0, all, comms)
		} else {
			p.Observe("KG20", "k", 1, p.run, 0, comms)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := p.Acquire("KG20", "k", 1, signers); !ok {
			b.Fatal("pool ran dry")
		}
	}
}
