package precompute

import (
	"math/big"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"thetacrypt/internal/share"
)

// coeffKey identifies one memoized Lagrange coefficient map. The subset
// component is the canonical (sorted, deduped) index list rendered as a
// string, so permutations of the same signer set hit the same entry.
type coeffKey struct {
	scheme string
	keyID  string
	epoch  int
	subset string
}

// Cache memoizes Lagrange coefficient maps. Entries are immutable once
// stored (callers must not mutate the returned maps); the cache is
// bounded and evicts in insertion order.
type Cache struct {
	mu      sync.Mutex
	entries map[coeffKey]map[int]*big.Int
	order   []coeffKey
	cap     int

	hits   atomic.Int64
	misses atomic.Int64
}

func newCache(cap int) *Cache {
	return &Cache{entries: make(map[coeffKey]map[int]*big.Int), cap: cap}
}

func subsetString(canon []int) string {
	var b strings.Builder
	for i, idx := range canon {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}

func (c *Cache) lagrange(scheme, keyID string, epoch int, subset []int, modulus *big.Int) (map[int]*big.Int, error) {
	canon := share.CanonicalSubset(subset)
	key := coeffKey{scheme: scheme, keyID: keyID, epoch: epoch, subset: subsetString(canon)}
	c.mu.Lock()
	if m, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return m, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	m, err := share.Coefficients(canon, modulus)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = m
		c.order = append(c.order, key)
		for len(c.order) > c.cap {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	return m, nil
}

// invalidate removes the named key's entries below keepEpoch.
func (c *Cache) invalidate(scheme, keyID string, keepEpoch int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.order[:0]
	for _, k := range c.order {
		if k.scheme == scheme && k.keyID == keyID && k.epoch < keepEpoch {
			delete(c.entries, k)
			continue
		}
		kept = append(kept, k)
	}
	c.order = kept
}

// CoeffSource adapts one (scheme, key, epoch) view of the cache to
// share.CoefficientSource. The zero value (nil cache) computes directly,
// so callers can thread it unconditionally.
type CoeffSource struct {
	cache  *Cache
	scheme string
	keyID  string
	epoch  int
}

// Lagrange implements share.CoefficientSource.
func (s CoeffSource) Lagrange(subset []int, modulus *big.Int) (map[int]*big.Int, error) {
	if s.cache == nil {
		return share.Coefficients(subset, modulus)
	}
	return s.cache.lagrange(s.scheme, s.keyID, s.epoch, subset, modulus)
}
