package precompute

import (
	"crypto/rand"
	"encoding/binary"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"thetacrypt/internal/schemes/frost"
)

// NoncePool banks FROST preprocessed nonces per (scheme, key, epoch).
// Each bank assigns monotonically increasing sequence numbers to slots;
// a slot holds this node's secret nonce and the commitments observed
// from every member. A slot is consumable once the commitments of a
// full signer set have arrived. Consumption deletes the secret nonce
// BEFORE any signature share is computed (consume-then-sign), so a
// nonce is never used twice even if the signing attempt is retried or
// crashes mid-way — reuse would leak the key share. Banks are keyed by
// epoch: after a reshare the old bank is unreachable and the pool warms
// up fresh under the new epoch.
//
// Sequence numbers are meaningful only within one *run* — the random id
// the refill initiator draws at boot and carries in every refill. The
// sequence high-water mark is volatile, so after a restart the
// initiator would propose already-used bases again; under the old run
// those seqs are burned on the followers (re-banking them would let the
// banked secrets diverge from the broadcast commitments), but a fresh
// run id opens a fresh namespace: followers reset the key's bank on the
// first refill of a new run and bank from base zero again. The old
// run's surviving slots are dropped with the reset — the restarted
// initiator lost its secrets for them, so they could never complete a
// signing round anyway.
type NoncePool struct {
	depth  int
	refill int
	// run is this node's refill namespace id, drawn fresh each boot. It
	// only reaches the wire when this node is a key's designated refill
	// initiator; everyone else banks under the run id of the refills it
	// observes.
	run uint64

	mu    sync.Mutex
	banks map[nonceBankKey]*nonceBank

	refills     atomic.Int64
	exhaustions atomic.Int64
}

func newNoncePool(rnd io.Reader, depth, refill int) *NoncePool {
	if rnd == nil {
		rnd = rand.Reader
	}
	var buf [8]byte
	run := uint64(time.Now().UnixNano()) // fallback if rnd fails
	if _, err := io.ReadFull(rnd, buf[:]); err == nil {
		run = binary.BigEndian.Uint64(buf[:])
	}
	return &NoncePool{depth: depth, refill: refill, run: run, banks: make(map[nonceBankKey]*nonceBank)}
}

// Depth returns the configured target bank depth.
func (p *NoncePool) Depth() int {
	if p == nil {
		return 0
	}
	return p.depth
}

// Enabled reports whether pooling is on.
func (p *NoncePool) Enabled() bool { return p != nil && p.depth > 0 }

// bankFor returns the bank for (scheme, key, epoch) under the given
// run id, creating it when absent. An existing bank under a DIFFERENT
// run is reset: a new run means the refill initiator restarted and lost
// every secret it banked under the old one, so the old slots can never
// complete a signing round — keeping them would only hard-fail requests
// and (worse) let re-banked sequence numbers diverge from previously
// broadcast commitments. p.mu is held.
func (p *NoncePool) bankFor(scheme, keyID string, epoch int, run uint64) *nonceBank {
	k := nonceBankKey{scheme: scheme, keyID: keyID, epoch: epoch}
	b := p.banks[k]
	if b != nil && b.run != run {
		b = nil
	}
	if b == nil {
		b = &nonceBank{
			run:   run,
			own:   make(map[uint64]*frost.Nonce),
			comms: make(map[uint64]map[int]*frost.NonceCommitment),
		}
		p.banks[k] = b
	}
	return b
}

// NeedRefill reports whether the bank for (scheme, key, epoch) has
// dropped below the refill watermark, and if so the run id, base
// sequence number, and count a refill round should cover. Only the
// designated refill initiator should act on it, so concurrent refills
// never race on sequence assignment; run is this node's per-boot
// namespace id, so a restarted initiator never reuses the sequence
// ranges of its previous life.
func (p *NoncePool) NeedRefill(scheme, keyID string, epoch int) (run, base uint64, count int, need bool) {
	if !p.Enabled() {
		return 0, 0, 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.bankFor(scheme, keyID, epoch, p.run)
	if len(b.own) >= p.refill {
		return 0, 0, 0, false
	}
	return p.run, b.nextSeq, p.depth - len(b.own), true
}

// BankOwn stores this node's freshly generated nonces for sequence
// numbers base..base+len(nonces)-1 of the given refill run and their
// commitments. Within a run, sequence numbers already assigned locally
// are skipped — a replayed or overlapping refill can never resurrect a
// consumed nonce. A new run resets the bank (see bankFor).
func (p *NoncePool) BankOwn(scheme, keyID string, epoch int, run, base uint64, nonces []*frost.Nonce, comms []*frost.NonceCommitment) {
	if !p.Enabled() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.bankFor(scheme, keyID, epoch, run)
	for i, n := range nonces {
		seq := base + uint64(i)
		if seq < b.nextSeq {
			continue
		}
		b.own[seq] = n
		p.observeLocked(b, seq, comms[i])
	}
	if end := base + uint64(len(nonces)); end > b.nextSeq {
		b.nextSeq = end
	}
	p.refills.Add(1)
}

// Observe records another member's commitments for sequence numbers
// base..base+len(comms)-1 of the given refill run.
func (p *NoncePool) Observe(scheme, keyID string, epoch int, run, base uint64, comms []*frost.NonceCommitment) {
	if !p.Enabled() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.bankFor(scheme, keyID, epoch, run)
	for i, c := range comms {
		p.observeLocked(b, base+uint64(i), c)
	}
}

func (p *NoncePool) observeLocked(b *nonceBank, seq uint64, c *frost.NonceCommitment) {
	if c == nil {
		return
	}
	m := b.comms[seq]
	if m == nil {
		m = make(map[int]*frost.NonceCommitment)
		b.comms[seq] = m
	}
	m[c.Index] = c
}

// Acquire consumes, for the initiator, the lowest banked slot whose
// commitments cover every signer in the subset. The secret nonce is
// removed from the bank before it is returned (consume-then-sign). The
// returned commitments are the signer set's, in frost's sorted order.
// ok is false — and the exhaustion counter bumps — when no complete
// slot exists; the caller then degrades to the two-round path.
func (p *NoncePool) Acquire(scheme, keyID string, epoch int, signers []int) (seq uint64, nonce *frost.Nonce, comms []*frost.NonceCommitment, ok bool) {
	if !p.Enabled() {
		return 0, nil, nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.banks[nonceBankKey{scheme: scheme, keyID: keyID, epoch: epoch}]
	if b == nil {
		p.exhaustions.Add(1)
		return 0, nil, nil, false
	}
	best := uint64(0)
	found := false
	for s := range b.own {
		if !slotComplete(b.comms[s], signers) {
			continue
		}
		if !found || s < best {
			best, found = s, true
		}
	}
	if !found {
		p.exhaustions.Add(1)
		return 0, nil, nil, false
	}
	nonce = b.own[best]
	delete(b.own, best)
	slot := b.comms[best]
	delete(b.comms, best)
	comms = make([]*frost.NonceCommitment, 0, len(signers))
	for _, idx := range signers {
		comms = append(comms, slot[idx])
	}
	return best, nonce, comms, true
}

// Claim consumes a specific slot for a follower joining a pooled round
// the initiator selected. It returns the node's secret nonce and its
// own banked commitment (for cross-checking the initiator's set); the
// nonce is removed before return. ok is false when the slot was never
// banked or already consumed.
func (p *NoncePool) Claim(scheme, keyID string, epoch int, seq uint64, self int) (nonce *frost.Nonce, own *frost.NonceCommitment, ok bool) {
	if !p.Enabled() {
		return nil, nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.banks[nonceBankKey{scheme: scheme, keyID: keyID, epoch: epoch}]
	if b == nil {
		return nil, nil, false
	}
	nonce = b.own[seq]
	if nonce == nil {
		return nil, nil, false
	}
	delete(b.own, seq)
	own = b.comms[seq][self]
	delete(b.comms, seq)
	return nonce, own, true
}

func slotComplete(slot map[int]*frost.NonceCommitment, signers []int) bool {
	if slot == nil {
		return false
	}
	for _, idx := range signers {
		if slot[idx] == nil {
			return false
		}
	}
	return true
}

// DepthOf returns the number of unconsumed own nonces banked for one
// (scheme, key, epoch).
func (p *NoncePool) DepthOf(scheme, keyID string, epoch int) int {
	if !p.Enabled() {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.banks[nonceBankKey{scheme: scheme, keyID: keyID, epoch: epoch}]
	if b == nil {
		return 0
	}
	return len(b.own)
}

// TotalDepth sums unconsumed own nonces across all banks.
func (p *NoncePool) TotalDepth() int {
	if !p.Enabled() {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, b := range p.banks {
		total += len(b.own)
	}
	return total
}

// invalidate drops the named key's banks below keepEpoch.
func (p *NoncePool) invalidate(scheme, keyID string, keepEpoch int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := range p.banks {
		if k.scheme == scheme && k.keyID == keyID && k.epoch < keepEpoch {
			delete(p.banks, k)
		}
	}
}
