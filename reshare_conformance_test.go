package thetacrypt_test

// Conformance for the key lifecycle: the same application code drives
// generate → reshare → epoch-guarded submission against every Service
// implementation, and a tcpnet deployment proves the durable keystore
// by killing and restarting a committee member mid-lifecycle.

import (
	"context"
	"crypto/rand"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"thetacrypt"
	"thetacrypt/api"
	"thetacrypt/internal/keys"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
	"thetacrypt/internal/schemes/sg02"
)

// exerciseReshare is the lifecycle application code written once
// against the interface: DKG-generate a key, seal a secret under epoch
// 1, reshare onto the {1, 2, 3} sub-committee, then check that the
// keychain reports the new epoch and committee, that old-epoch pins are
// rejected with the typed error, and that the epoch-1 ciphertext still
// opens under the epoch-2 shares.
func exerciseReshare(t *testing.T, svc thetacrypt.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	kh, err := svc.GenerateKey(ctx, thetacrypt.SG02, thetacrypt.GenerateKeyOptions{KeyID: "conf-reshare"})
	if err != nil {
		t.Fatal(err)
	}
	if kres, err := svc.Wait(ctx, kh); err != nil || kres.Err != nil {
		t.Fatalf("keygen: %v / %+v", err, kres)
	}
	secret := []byte("sealed at epoch 1")
	ct, err := svc.Encrypt(ctx, thetacrypt.SG02, "conf-reshare", secret, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Resharing an unknown key or a deal-only scheme fails up front
	// with the structured codes.
	if _, err := svc.ReshareKey(ctx, thetacrypt.SG02, "no-such-key", thetacrypt.ReshareOptions{}); api.CodeOf(err) != api.CodeKeyUnknown {
		t.Fatalf("reshare of unknown key: got %v (code %s)", err, api.CodeOf(err))
	}

	rh, err := svc.ReshareKey(ctx, thetacrypt.SG02, "conf-reshare",
		thetacrypt.ReshareOptions{NewT: 1, Members: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := svc.Wait(ctx, rh)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Err != nil || string(rres.Value) != "2" {
		t.Fatalf("reshare result: %+v", rres)
	}

	// The keychain reports the advanced epoch and the explicit
	// committee on the answering node.
	listed, err := svc.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, k := range listed {
		if k.Scheme == string(thetacrypt.SG02) && k.KeyID == "conf-reshare" {
			found = true
			if k.Epoch != 2 {
				t.Fatalf("listing reports epoch %d after reshare", k.Epoch)
			}
			if len(k.Members) != 3 || k.Members[0] != 1 || k.Members[1] != 2 || k.Members[2] != 3 {
				t.Fatalf("listing reports members %v after reshare", k.Members)
			}
		}
	}
	if !found {
		t.Fatalf("reshared key missing from listing: %+v", listed)
	}

	// A submission pinned to the superseded epoch is rejected with the
	// typed error before any instance state is created.
	if _, err := svc.Submit(ctx, thetacrypt.Request{
		Scheme: thetacrypt.SG02, KeyID: "conf-reshare", Op: thetacrypt.OpDecrypt,
		Payload: ct, Epoch: 1,
	}); api.CodeOf(err) != api.CodeKeyEpoch {
		t.Fatalf("old-epoch submit: got %v (code %s)", err, api.CodeOf(err))
	}

	// Pinned to the new epoch, the epoch-1 ciphertext opens: resharing
	// moved the shares, not the secret.
	plain, err := thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme: thetacrypt.SG02, KeyID: "conf-reshare", Op: thetacrypt.OpDecrypt,
		Payload: ct, Epoch: 2,
	})
	if err != nil {
		t.Fatalf("decrypt pinned to new epoch: %v", err)
	}
	if string(plain) != string(secret) {
		t.Fatalf("new-epoch decryption yielded %q", plain)
	}
	// Unpinned submissions ride the current epoch.
	plain, err = thetacrypt.Execute(ctx, svc, thetacrypt.Request{
		Scheme: thetacrypt.SG02, KeyID: "conf-reshare", Op: thetacrypt.OpDecrypt, Payload: ct,
	})
	if err != nil || string(plain) != string(secret) {
		t.Fatalf("unpinned decrypt after reshare: %q / %v", plain, err)
	}
	// A second identical reshare request is stale by construction (the
	// epoch moved) and reports the epoch conflict.
	if _, err := svc.Submit(ctx, thetacrypt.Request{
		Scheme: thetacrypt.SG02, KeyID: "conf-reshare", Op: thetacrypt.OpReshare,
		Payload: protocols.ReshareSpec{NewT: 1, Members: []int{1, 2, 3}}.Marshal(), Epoch: 1,
	}); api.CodeOf(err) != api.CodeKeyEpoch {
		t.Fatalf("stale reshare submit: got %v (code %s)", err, api.CodeOf(err))
	}
}

func TestReshareConformanceEmbedded(t *testing.T) {
	exerciseReshare(t, embeddedService(t))
}

func TestReshareConformanceRemote(t *testing.T) {
	exerciseReshare(t, remoteService(t))
}

func TestReshareConformanceNodeTCP(t *testing.T) {
	exerciseReshare(t, nodeDeployment(t)[0])
}

// TestNodeKeystoreDurableAcrossRestart is the durability acceptance
// test: a tcpnet deployment with per-node key files reshapes its
// default SG02 key onto the {1, 2} committee (quorum 2 — BOTH members
// must hold live shares), node 2 is killed and restarted from its key
// file alone, and a decryption pinned to the reshared epoch then
// succeeds — proving the resharded share and epoch reloaded from disk.
func TestNodeKeystoreDurableAcrossRestart(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	const tt, n = 1, 4
	dir := t.TempDir()
	keyFile := func(i int) string { return filepath.Join(dir, fmt.Sprintf("node%d.key", i)) }
	stores, err := keys.Deal(rand.Reader, tt, n, keys.Options{Schemes: []schemes.ID{schemes.SG02}})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*thetacrypt.Node, n)
	t.Cleanup(func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	})
	for i := 0; i < n; i++ {
		nodes[i], err = thetacrypt.NewNode(thetacrypt.NodeConfig{
			Keys:       stores[i],
			KeyFile:    keyFile(i + 1),
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wire := func() {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					nodes[i].SetPeer(j+1, nodes[j].P2PAddr())
				}
			}
		}
	}
	wire()

	// loadFile parses one node's on-disk keystore and returns its
	// default SG02 key record.
	loadFile := func(i int) (*keys.Key, error) {
		raw, err := os.ReadFile(keyFile(i))
		if err != nil {
			return nil, err
		}
		ks, err := keys.UnmarshalKeystore(raw)
		if err != nil {
			return nil, err
		}
		return ks.Get(schemes.SG02, "")
	}
	// Startup spilled the dealt keystore: epoch 1 on disk.
	if k, err := loadFile(2); err != nil || k.Epoch != keys.FirstEpoch {
		t.Fatalf("startup spill: %+v / %v", k, err)
	}

	secret := []byte("must survive the restart")
	ct, err := nodes[0].Encrypt(ctx, thetacrypt.SG02, "", secret, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Reshare onto {1, 2} at t=1: quorum 2, so BOTH members must hold
	// live shares for any later decryption.
	rh, err := nodes[0].ReshareKey(ctx, thetacrypt.SG02, "", thetacrypt.ReshareOptions{NewT: 1, Members: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rres, err := nodes[0].Wait(ctx, rh); err != nil || rres.Err != nil || string(rres.Value) != "2" {
		t.Fatalf("reshare: %v / %+v", err, rres)
	}

	// Wait for the epoch bump to reach the key files of the member we
	// will kill and of the leaving observer.
	waitEpochOnDisk := func(i int) *keys.Key {
		deadline := time.Now().Add(20 * time.Second)
		for {
			k, err := loadFile(i)
			if err == nil && k.Epoch == 2 {
				return k
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d key file never reached epoch 2 (last: %+v / %v)", i, k, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	k2 := waitEpochOnDisk(2)
	if k2.Share == nil || len(k2.Members) != 2 {
		t.Fatalf("node 2 spilled record incomplete: %+v", k2)
	}
	if s := k2.Share.(sg02.KeyShare); s.Index != 2 {
		t.Fatalf("node 2 spilled share index %d, want 2", s.Index)
	}
	// The observer spilled a public-only record.
	if k4 := waitEpochOnDisk(4); k4.Share != nil {
		t.Fatalf("leaving node 4 spilled a share it should not hold")
	}
	// ...and answers quorum operations with the typed no-share code.
	if _, err := nodes[3].Submit(ctx, thetacrypt.Request{
		Scheme: thetacrypt.SG02, Op: thetacrypt.OpDecrypt, Payload: ct,
	}); api.CodeOf(err) != api.CodeKeyNoShare {
		t.Fatalf("observer submit: got %v (code %s)", err, api.CodeOf(err))
	}

	// Kill node 2 and restart it from its key file alone.
	nodes[1].Close()
	nodes[1] = nil
	raw, err := os.ReadFile(keyFile(2))
	if err != nil {
		t.Fatal(err)
	}
	store2, err := keys.UnmarshalKeystore(raw)
	if err != nil {
		t.Fatal(err)
	}
	nodes[1], err = thetacrypt.NewNode(thetacrypt.NodeConfig{
		Keys:       store2,
		KeyFile:    keyFile(2),
		ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	wire()

	// The restarted node reports the resharded epoch from disk...
	listed, err := nodes[1].Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].Epoch != 2 {
		t.Fatalf("restarted keychain: %+v", listed)
	}
	// ...and serves its reloaded share: the epoch-pinned decryption
	// cannot reach its quorum of 2 without node 2.
	plain, err := thetacrypt.Execute(ctx, nodes[0], thetacrypt.Request{
		Scheme: thetacrypt.SG02, Op: thetacrypt.OpDecrypt, Payload: ct, Epoch: 2,
	})
	if err != nil {
		t.Fatalf("decrypt after restart: %v", err)
	}
	if string(plain) != string(secret) {
		t.Fatalf("post-restart decryption yielded %q", plain)
	}
	// A stale-epoch pin still answers with the typed conflict, from a
	// keystore that lived through a crash.
	if _, err := nodes[1].Submit(ctx, thetacrypt.Request{
		Scheme: thetacrypt.SG02, Op: thetacrypt.OpDecrypt, Payload: ct, Epoch: 1,
	}); api.CodeOf(err) != api.CodeKeyEpoch {
		t.Fatalf("stale pin after restart: got %v (code %s)", err, api.CodeOf(err))
	}
}
