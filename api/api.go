// Package api defines version 2 of Thetacrypt's client-facing surface:
// the Service interface implemented by every deployment style, the
// structured error model, and the JSON wire types of the /v2 HTTP
// endpoints.
//
// The paper exposes two integration styles — an embedded library and a
// remote RPC service — that had drifted into incompatible shapes.
// Service unifies them: thetacrypt.Cluster (embedded, simulated
// transport), thetacrypt.Node (one standalone deployment member), and
// client.Client (typed SDK over the /v2 HTTP endpoints) all implement
// it, so applications and benchmarks are written once and swap
// deployment styles with a constructor change.
package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

// Handle identifies a submitted protocol instance. Handles are
// deterministic (derived from the request), so any node of a deployment
// can serve the result and re-submitting a request yields the same
// handle.
type Handle struct {
	InstanceID string
}

// Result is the client-facing outcome of a protocol instance.
type Result struct {
	InstanceID string
	// Value is the operation's output: a signature, a plaintext, or a
	// coin value.
	Value []byte
	// Err is non-nil when the instance failed; its Code (see CodeOf)
	// classifies the failure.
	Err error
	// ServerLatency is the server-side processing time of the instance
	// on the answering node (the paper's server-side latency metric).
	ServerLatency time.Duration
}

// Info describes a deployment endpoint, the schemes it holds keys
// for, and its keychain.
type Info struct {
	// NodeIndex is the answering node's 1-based index.
	NodeIndex int
	// N and T are the deployment size and corruption threshold.
	N, T int
	// Schemes lists the schemes with at least one key.
	Schemes []schemes.ID
	// Keys lists the named keys of the node's keystore (dealt and
	// DKG-generated); nil when the endpoint predates API v2.3.
	Keys []KeyInfo
	// Stats is the answering node's engine snapshot (lifecycle and
	// flow control); nil when the endpoint predates API v2.1.
	Stats *EngineStats
	// Committees describes the committees behind a router endpoint,
	// one block per backend in routing order; nil for single-committee
	// deployments (API v2.4).
	Committees []CommitteeInfo
}

// CommitteeInfo is one committee behind a router endpoint: its
// parameters, the keys placed on it, and its front node's engine
// snapshot. A committee the router could not reach when Info was
// assembled is reported with Down set and its last error — the router
// stays up and keeps serving the remaining committees.
type CommitteeInfo struct {
	Name    string   `json:"name"`
	N       int      `json:"n,omitempty"`
	T       int      `json:"t,omitempty"`
	Schemes []string `json:"schemes,omitempty"`
	// Keys counts the named keys this committee reported.
	Keys int `json:"keys"`
	// Down marks a committee that did not answer; Error carries the
	// failure.
	Down  bool         `json:"down,omitempty"`
	Error string       `json:"error,omitempty"`
	Stats *EngineStats `json:"stats,omitempty"`
}

// KeyInfo describes one named key of a keystore: its address
// (scheme, key ID), arithmetic structure, and the marshaled public
// material so clients can compare keys across nodes.
type KeyInfo struct {
	Scheme  string `json:"scheme"`
	KeyID   string `json:"key_id"`
	Group   string `json:"group,omitempty"`
	Default bool   `json:"default,omitempty"`
	// Epoch is the key's share version: 1 for freshly dealt or
	// DKG-generated keys, bumped by every resharing. 0 marks a key
	// loaded from a pre-epoch keystore file.
	Epoch int `json:"epoch,omitempty"`
	// Members lists the mesh node indices of the key's committee in
	// share-index order; empty means the identity committee 1..n.
	Members []int `json:"members,omitempty"`
	// PublicKey is the scheme's marshaled public key.
	PublicKey []byte `json:"public_key,omitempty"`
}

// KeyInfosOf converts a keystore listing into the wire shape, shared
// by the HTTP service layer and the embedded deployments.
func KeyInfosOf(list []keys.Info) []KeyInfo {
	out := make([]KeyInfo, len(list))
	for i, k := range list {
		out[i] = KeyInfo{
			Scheme:    string(k.Scheme),
			KeyID:     k.ID,
			Group:     k.Group,
			Default:   k.Default,
			Epoch:     k.Epoch,
			Members:   k.Members,
			PublicKey: k.Public,
		}
	}
	return out
}

// GenerateKeyOptions configures Service.GenerateKey.
type GenerateKeyOptions struct {
	// KeyID names the new key; a fresh random ID is assigned when
	// empty. The ID travels in the keygen request, so every node
	// installs the key under the same name.
	KeyID string
	// Group is the DL group of the new key ("edwards25519", "p256");
	// empty selects edwards25519.
	Group string
}

// KeygenRequest builds the protocol request behind GenerateKey: an
// OpKeyGen instance whose KeyID names the key to create and whose
// payload carries the group. It is the one construction seam shared by
// the embedded deployments and the HTTP service layer, so both derive
// identical instances from identical options.
func KeygenRequest(scheme schemes.ID, opts GenerateKeyOptions) (protocols.Request, *Error) {
	id := opts.KeyID
	if id == "" {
		var buf [6]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return protocols.Request{}, Errf(CodeInternal, "generate key id: %v", err)
		}
		id = "k-" + hex.EncodeToString(buf[:])
	}
	req := protocols.Request{
		Scheme:  scheme,
		KeyID:   id,
		Op:      protocols.OpKeyGen,
		Payload: []byte(opts.Group),
	}
	if e := ValidateRequest(req); e != nil {
		return protocols.Request{}, e
	}
	return req, nil
}

// ReshareOptions configures Service.ReshareKey.
type ReshareOptions struct {
	// NewT is the corruption threshold of the new sharing; zero or
	// negative keeps the key's current threshold.
	NewT int
	// Members lists the mesh node indices (strictly ascending, 1-based)
	// that form the new committee; empty keeps the current committee.
	// Nodes outside the list keep a public-only record of the key.
	Members []int
}

// ReshareRequest builds the protocol request behind ReshareKey: an
// OpReshare instance pinned to the key's current epoch, whose payload
// carries the new committee spec. It is the one construction seam
// shared by the embedded deployments and the HTTP service layer, so
// both derive identical instances from identical options. The store is
// consulted for the key's current epoch, threshold, and membership;
// defaults fill from them.
func ReshareRequest(store *keys.Keystore, scheme schemes.ID, keyID string, opts ReshareOptions) (protocols.Request, *Error) {
	k, err := store.Get(scheme, keyID)
	if err != nil {
		return protocols.Request{}, Errf(CodeKeyUnknown, "%v", err)
	}
	if !keys.SupportsReshare(scheme) {
		return protocols.Request{}, Errf(CodeBadRequest, "scheme %s does not support resharing", scheme)
	}
	t, n := k.Params()
	spec := protocols.ReshareSpec{NewT: opts.NewT, Members: opts.Members}
	if spec.NewT <= 0 {
		spec.NewT = t
	}
	if len(spec.Members) == 0 {
		if spec.Members = k.Members; spec.Members == nil {
			spec.Members = make([]int, n)
			for i := range spec.Members {
				spec.Members[i] = i + 1
			}
		}
	}
	for _, m := range spec.Members {
		if m < 1 || m > store.N {
			return protocols.Request{}, Errf(CodeBadRequest,
				"member %d outside deployment 1..%d", m, store.N)
		}
	}
	req := protocols.Request{
		Scheme:  scheme,
		KeyID:   k.ID,
		Op:      protocols.OpReshare,
		Payload: spec.Marshal(),
		Epoch:   k.Epoch,
	}
	if e := ValidateRequest(req); e != nil {
		return protocols.Request{}, e
	}
	return req, nil
}

// EngineStats is a node's orchestration-engine snapshot: the instance
// lifecycle (live/finished/evicted) and flow control (queue depth,
// overload rejections, rejected shares) counters, served inline with
// /v2/info. Field meanings match orchestration.Stats.
type EngineStats struct {
	Live           int    `json:"live"`
	Finished       int    `json:"finished"`
	Evicted        uint64 `json:"evicted"`
	QueueDepth     int    `json:"queue_depth"`
	QueueCap       int    `json:"queue_cap"`
	RejectedShares uint64 `json:"rejected_shares"`
	Overloaded     uint64 `json:"overloaded"`
	// PartialBroadcasts counts round broadcasts that failed for some but
	// not all peers (the run continued); a rising counter points at the
	// lagging peer in Transport.
	PartialBroadcasts uint64 `json:"partial_broadcasts,omitempty"`
	// Transport is the per-peer health of the node's P2P links; nil when
	// the endpoint predates API v2.2 or the transport has no peers.
	Transport *TransportStats `json:"transport,omitempty"`
	// Crypto is the node's precompute-layer snapshot (Lagrange cache,
	// verification batching, FROST nonce pool); nil when the endpoint
	// predates API v2.5.
	Crypto *CryptoStats `json:"crypto,omitempty"`
}

// CryptoStats is the wire form of the precompute layer's counters.
// Field meanings match precompute.Stats.
type CryptoStats struct {
	// LagrangeHits/LagrangeMisses describe the coefficient cache: a hit
	// skips the modular-inverse chain of a Lagrange basis computation.
	LagrangeHits   int64 `json:"lagrange_hits"`
	LagrangeMisses int64 `json:"lagrange_misses"`
	// NoncePoolDepth is the total number of FROST nonce slots currently
	// banked across keys; NonceRefills and NonceExhaustions count refill
	// batches banked and signing requests that found the pool empty
	// (and degraded to the two-round path).
	NoncePoolDepth   int   `json:"nonce_pool_depth"`
	NonceRefills     int64 `json:"nonce_refills"`
	NonceExhaustions int64 `json:"nonce_exhaustions"`
	// BatchesVerified/BatchedRelations/MaxBatch describe share
	// verification batching; CoalescedRequests counts verifications that
	// shared another request's batch, BatchFallbacks the batches that
	// failed and were replayed individually for attribution.
	BatchesVerified   int64 `json:"batches_verified"`
	BatchedRelations  int64 `json:"batched_relations"`
	MaxBatch          int   `json:"max_batch"`
	BatchFallbacks    int64 `json:"batch_fallbacks"`
	CoalescedRequests int64 `json:"coalesced_requests"`
}

// TransportStats is the wire form of the P2P layer's health snapshot.
type TransportStats struct {
	Peers []PeerStats `json:"peers"`
	// Policy is the transport's full-queue policy ("block",
	// "drop-oldest", "fail-fast").
	Policy string `json:"policy,omitempty"`
	// Reliable reports that the transport runs the seq/ack layer:
	// frames lost between socket and engine are resent after reconnect
	// and deduplicated before delivery.
	Reliable bool `json:"reliable,omitempty"`
	// Authenticated reports that every link runs the identity-keyed
	// mutual-authentication handshake and AEAD record layer.
	Authenticated bool `json:"authenticated,omitempty"`
}

// Peer returns the snapshot of one peer link.
func (ts *TransportStats) Peer(index int) (PeerStats, bool) {
	if ts == nil {
		return PeerStats{}, false
	}
	for _, p := range ts.Peers {
		if p.Peer == index {
			return p, true
		}
	}
	return PeerStats{}, false
}

// PeerStats is one peer link as seen by the answering node: health
// state ("up", "dialing", "down"), the bounded outbound queue, and
// send/drop counters. Field meanings match network.PeerStats.
type PeerStats struct {
	Peer       int    `json:"peer"`
	State      string `json:"state"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Enqueued   uint64 `json:"enqueued"`
	Sent       uint64 `json:"sent"`
	// Delivered counts frames the peer acknowledged (they reached its
	// engine); Sent minus Delivered is the in-transit gap the ack layer
	// tracks.
	Delivered uint64 `json:"delivered"`
	// Inflight is the ack layer's window occupancy: frames staged and
	// awaiting acknowledgement, resent after a reconnect.
	Inflight int `json:"inflight"`
	// Resent counts retransmissions of unacknowledged frames.
	Resent              uint64 `json:"resent"`
	Dropped             uint64 `json:"dropped"`
	ConsecutiveFailures uint64 `json:"consecutive_failures"`
	LastError           string `json:"last_error,omitempty"`
	// Authenticated marks the link's current connection as having
	// completed the roster handshake.
	Authenticated bool `json:"authenticated,omitempty"`
}

// Service is the one client-facing interface over every deployment
// style (the tentpole of API v2). Submit and SubmitBatch start protocol
// instances (the protocol API); Encrypt, Info, and Keys are local
// operations against the node's keystore (the scheme API); GenerateKey
// creates new named keys at runtime through a distributed key
// generation (the keychain API).
//
// Every request addresses a named key: protocols.Request.KeyID and
// Encrypt's keyID select it, the empty ID meaning the scheme's default
// key. A key ID the answering node does not hold fails with
// CodeKeyUnknown on every implementation.
//
// Submission is idempotent: submitting an identical request — same
// scheme, key, operation, payload, and session — joins the existing
// instance and returns the same handle instead of failing. Per-request
// deadlines travel via the submit context (remote implementations
// forward the context deadline to the server) and via Wait's context.
type Service interface {
	// Submit starts one protocol instance and returns its handle.
	Submit(ctx context.Context, req protocols.Request) (Handle, error)
	// SubmitBatch starts 1..N instances in one call, amortizing
	// per-request dispatch (and, remotely, round-trips and JSON
	// decoding). Handles are returned in request order.
	SubmitBatch(ctx context.Context, reqs []protocols.Request) ([]Handle, error)
	// Wait blocks until the instance finishes or ctx expires. A failed
	// instance is reported inside the Result (Result.Err), transport
	// and deadline failures as the second return value.
	Wait(ctx context.Context, h Handle) (Result, error)
	// Encrypt creates a ciphertext under a named public key of an
	// encryption scheme (SG02 or BZ03); the empty keyID selects the
	// scheme's default key. It is a local computation at the answering
	// node; decryption requires a threshold quorum.
	Encrypt(ctx context.Context, scheme schemes.ID, keyID string, message, label []byte) ([]byte, error)
	// Info reports deployment parameters, available schemes, and the
	// keychain.
	Info(ctx context.Context) (Info, error)
	// Keys lists the named keys of the answering node's keystore.
	Keys(ctx context.Context) ([]KeyInfo, error)
	// GenerateKey starts a distributed key generation for the scheme
	// (SG02, KG20, or CKS05) and returns the handle of the keygen
	// instance; its Result carries the new key's ID as the value. The
	// generated key is immediately usable for Submit under that ID.
	GenerateKey(ctx context.Context, scheme schemes.ID, opts GenerateKeyOptions) (Handle, error)
	// ReshareKey starts a live resharing of a named key (same schemes
	// as GenerateKey): the current committee re-deals its shares to the
	// committee in opts (possibly a different node set with a different
	// threshold), the key's epoch advances by one, and shares of the
	// old epoch become unusable. The public key — and every ciphertext
	// and signature under it — stays valid. The instance's Result
	// carries the new epoch in decimal; the empty keyID selects the
	// scheme's default key.
	ReshareKey(ctx context.Context, scheme schemes.ID, keyID string, opts ReshareOptions) (Handle, error)
}

// KeyFetcher is implemented by Services that can resolve one named key
// without transferring the whole keychain (the client SDK issues a
// single GET /v2/keys/{scheme}/{id}). A missing key fails with
// CodeKeyUnknown on every implementation.
type KeyFetcher interface {
	Key(ctx context.Context, scheme schemes.ID, keyID string) (KeyInfo, error)
}

// FetchKey resolves one named key via the service's direct lookup when
// available, falling back to filtering the full keychain listing. The
// empty keyID selects the scheme's default key.
func FetchKey(ctx context.Context, s Service, scheme schemes.ID, keyID string) (KeyInfo, error) {
	if kf, ok := s.(KeyFetcher); ok {
		return kf.Key(ctx, scheme, keyID)
	}
	if keyID == "" {
		keyID = keys.DefaultKeyID
	}
	list, err := s.Keys(ctx)
	if err != nil {
		return KeyInfo{}, err
	}
	for _, k := range list {
		if k.Scheme == string(scheme) && k.KeyID == keyID {
			return k, nil
		}
	}
	return KeyInfo{}, Errf(CodeKeyUnknown, "unknown key %s/%s", scheme, keyID)
}

// KeyInfoFromStore resolves one named key of a keystore into the wire
// shape — the lookup seam shared by the HTTP service layer and the
// embedded deployments, so all of them 404 identically on a missing
// key (scheme_unknown before key_unknown, matching the submission
// path's check order). The empty keyID selects the scheme's default
// key.
func KeyInfoFromStore(store *keys.Keystore, scheme schemes.ID, keyID string) (KeyInfo, *Error) {
	if _, err := schemes.Lookup(scheme); err != nil {
		return KeyInfo{}, Errf(CodeSchemeUnknown, "%v", err)
	}
	k, err := store.Get(scheme, keyID)
	if err != nil {
		return KeyInfo{}, Errf(CodeKeyUnknown, "%v", err)
	}
	return KeyInfo{
		Scheme:    string(k.Scheme),
		KeyID:     k.ID,
		Group:     k.Group,
		Default:   k.ID == keys.DefaultKeyID,
		Epoch:     k.Epoch,
		Members:   append([]int(nil), k.Members...),
		PublicKey: k.PublicBytes(),
	}, nil
}

// BatchWaiter is implemented by Services that can wait for many handles
// more efficiently than one Wait call per handle (the client SDK
// streams all results over a single connection). Results are returned
// in handle order.
type BatchWaiter interface {
	WaitBatch(ctx context.Context, hs []Handle) ([]Result, error)
}

// EachWaiter is implemented by Services that can deliver batch results
// as each instance finishes, instead of all at once: fn is invoked with
// the handle's position and its result, serially, in completion order.
// Callers time or stream per-request completions through it without
// waiting for the whole batch.
type EachWaiter interface {
	WaitEach(ctx context.Context, hs []Handle, fn func(i int, res Result)) error
}

// WaitEach waits for every handle and invokes fn as each result
// arrives, using the service's streaming delivery when available and
// falling back to one concurrent Wait per handle otherwise. fn calls
// are serialized. A transport or deadline failure is returned after all
// in-flight waits settle; instance failures arrive inside Result.Err.
func WaitEach(ctx context.Context, s Service, hs []Handle, fn func(i int, res Result)) error {
	if ew, ok := s.(EachWaiter); ok {
		return ew.WaitEach(ctx, hs, fn)
	}
	var (
		mu       sync.Mutex // serializes fn
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for i, h := range hs {
		wg.Add(1)
		go func(i int, h Handle) {
			defer wg.Done()
			res, err := s.Wait(ctx, h)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			mu.Lock()
			fn(i, res)
			mu.Unlock()
		}(i, h)
	}
	wg.Wait()
	return firstErr
}

// ValidateRequest classifies a request's defects into the structured
// error model before any instance state is created. Both Service
// implementations funnel submissions through it, so embedded and remote
// deployments reject identical requests with identical codes. The
// checks themselves live in protocols.Request.Validate; this maps its
// sentinels to codes.
func ValidateRequest(req protocols.Request) *Error {
	err := req.Validate()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, schemes.ErrUnknown):
		// Matched explicitly: only a failed scheme-registry lookup may
		// classify as scheme_unknown. New validation failures fall to
		// the bad_request default instead of masquerading as an unknown
		// scheme.
		return Errf(CodeSchemeUnknown, "%v", err)
	case errors.Is(err, protocols.ErrPayloadTooLarge):
		return Errf(CodePayloadTooLarge, "%v", err)
	default:
		// Unknown operations, malformed key IDs, unsupported keygen
		// targets, and any future structural defect.
		return Errf(CodeBadRequest, "%v", err)
	}
}

// CheckRequestKey resolves a request's key reference against the
// answering node's keystore, after ValidateRequest and before any
// instance state is created: a threshold operation under a key the
// node does not hold fails with CodeKeyUnknown (404), a keygen naming
// an installed key with CodeKeyExists (409), a request pinned to a
// stale epoch with CodeKeyEpoch (409), and a quorum operation under a
// key the node knows only publicly with CodeKeyNoShare (409). Both
// Service implementations funnel submissions through it, so embedded
// and remote deployments reject identical requests with identical
// codes.
//
// Requests pinned to a FUTURE epoch pass: during a resharing the
// submitting client may learn the new epoch before every node has
// finalized, and the engine defers such requests briefly instead of
// failing them.
func CheckRequestKey(store *keys.Keystore, req protocols.Request) *Error {
	if req.Op == protocols.OpKeyGen {
		if _, err := store.Get(req.Scheme, req.KeyID); err == nil {
			return Errf(CodeKeyExists, "key %s/%s already exists", req.Scheme, req.KeyID)
		}
		return nil
	}
	k, err := store.Get(req.Scheme, req.EffectiveKeyID())
	if err != nil {
		return Errf(CodeKeyUnknown, "%v", err)
	}
	pinned := req.Epoch > 0 || req.Op == protocols.OpReshare
	if pinned && req.Epoch < k.Epoch {
		return Errf(CodeKeyEpoch, "key %s/%s is at epoch %d, request pinned to %d",
			req.Scheme, k.ID, k.Epoch, req.Epoch)
	}
	// Reshare instances admit public-only nodes: a node leaving (or
	// outside) the committee participates as an observer and installs
	// the new public material.
	if req.Op != protocols.OpReshare && k.Share == nil {
		return Errf(CodeKeyNoShare, "node %d holds no share of key %s/%s",
			store.Index, req.Scheme, k.ID)
	}
	return nil
}

// Execute submits one request and waits for its value — the one-liner
// of the protocol API, written once against any Service.
func Execute(ctx context.Context, s Service, req protocols.Request) ([]byte, error) {
	h, err := s.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	res, err := s.Wait(ctx, h)
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, res.Err
	}
	return res.Value, nil
}

// WaitAll waits for every handle, using the service's batch streaming
// when available and falling back to sequential waits otherwise.
// Results are in handle order.
func WaitAll(ctx context.Context, s Service, hs []Handle) ([]Result, error) {
	if bw, ok := s.(BatchWaiter); ok {
		return bw.WaitBatch(ctx, hs)
	}
	out := make([]Result, len(hs))
	for i, h := range hs {
		res, err := s.Wait(ctx, h)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// ExecuteBatch submits a batch and waits for all results.
func ExecuteBatch(ctx context.Context, s Service, reqs []protocols.Request) ([]Result, error) {
	hs, err := s.SubmitBatch(ctx, reqs)
	if err != nil {
		return nil, err
	}
	return WaitAll(ctx, s, hs)
}
