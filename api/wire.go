package api

import (
	"errors"
	"time"

	"thetacrypt/internal/keys"
	"thetacrypt/internal/network"
	"thetacrypt/internal/orchestration"
	"thetacrypt/internal/precompute"
	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

func msToDuration(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }

// ClassifyResultErr maps an instance failure onto the structured error
// model — the one seam shared by the HTTP service layer and the
// embedded deployments, so a failed instance reports the same code on
// every Service implementation. nil stays nil; unrecognized failures
// classify as CodeInternal.
func ClassifyResultErr(err error) *Error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, orchestration.ErrExpired):
		// The result outlived the retention window; re-submitting the
		// request starts a fresh instance.
		return Errf(CodeExpired, "%v", err)
	case errors.Is(err, keys.ErrKeyUnknown):
		return Errf(CodeKeyUnknown, "%v", err)
	case errors.Is(err, keys.ErrKeyExists):
		return Errf(CodeKeyExists, "%v", err)
	case errors.Is(err, keys.ErrKeyEpoch):
		return Errf(CodeKeyEpoch, "%v", err)
	case errors.Is(err, keys.ErrKeyNoShare):
		return Errf(CodeKeyNoShare, "%v", err)
	default:
		return Errf(CodeInternal, "%v", err)
	}
}

// EngineStatsOf converts an engine snapshot into the wire shape, shared
// by the HTTP service layer and the embedded deployments.
func EngineStatsOf(st orchestration.Stats) *EngineStats {
	return &EngineStats{
		Live:              st.Live,
		Finished:          st.Finished,
		Evicted:           st.Evicted,
		QueueDepth:        st.QueueDepth,
		QueueCap:          st.QueueCap,
		RejectedShares:    st.RejectedShares,
		Overloaded:        st.Overloaded,
		PartialBroadcasts: st.PartialBroadcasts,
		Transport:         TransportStatsOf(st.Transport),
		Crypto:            CryptoStatsOf(st.Crypto),
	}
}

// CryptoStatsOf converts a precompute snapshot into the wire shape.
func CryptoStatsOf(cs precompute.Stats) *CryptoStats {
	return &CryptoStats{
		LagrangeHits:      cs.LagrangeHits,
		LagrangeMisses:    cs.LagrangeMisses,
		NoncePoolDepth:    cs.NoncePoolDepth,
		NonceRefills:      cs.NonceRefills,
		NonceExhaustions:  cs.NonceExhaustions,
		BatchesVerified:   cs.BatchesVerified,
		BatchedRelations:  cs.BatchedRelations,
		MaxBatch:          cs.MaxBatch,
		BatchFallbacks:    cs.BatchFallbacks,
		CoalescedRequests: cs.CoalescedRequests,
	}
}

// TransportStatsOf converts a transport snapshot into the wire shape;
// nil when the transport reports no peers (embedded single node, proxy).
func TransportStatsOf(ts network.TransportStats) *TransportStats {
	if len(ts.Peers) == 0 {
		return nil
	}
	out := &TransportStats{
		Peers:         make([]PeerStats, len(ts.Peers)),
		Policy:        ts.Policy.String(),
		Reliable:      ts.Reliable,
		Authenticated: ts.Authenticated,
	}
	for i, p := range ts.Peers {
		out.Peers[i] = PeerStats{
			Peer:                p.Peer,
			State:               p.State.String(),
			QueueDepth:          p.QueueDepth,
			QueueCap:            p.QueueCap,
			Enqueued:            p.Enqueued,
			Sent:                p.Sent,
			Delivered:           p.Delivered,
			Inflight:            p.Inflight,
			Resent:              p.Resent,
			Dropped:             p.Dropped,
			ConsecutiveFailures: p.ConsecutiveFailures,
			LastError:           p.LastError,
			Authenticated:       p.Authenticated,
		}
	}
	return out
}

// The /v2 endpoints and their JSON wire types. All payload byte fields
// are standard-library base64 (encoding/json []byte encoding).
//
//	POST /v2/protocol/submit    SubmitBatchRequest  -> SubmitBatchResponse
//	GET  /v2/protocol/results   ?ids=a,b&timeout_ms=N[&stream=1]
//	                            -> ResultsResponse, or an SSE stream of
//	                               one ResultEntry per "data:" event
//	POST /v2/scheme/encrypt     EncryptRequest      -> EncryptResponse
//	GET  /v2/info               -> InfoResponse
//	GET  /v2/keys               -> KeysResponse
//	GET  /v2/keys/{scheme}/{id} -> KeyResponse (404 key_unknown)
//	POST /v2/keys               GenerateKeyRequest  -> GenerateKeyResponse
//	POST /v2/keys/{id}/reshare  ReshareKeyRequest   -> ReshareKeyResponse
//
// Non-2xx responses carry ErrorResponse. Batch submission is partial:
// invalid items fail individually inside SubmitBatchResponse while the
// rest of the batch proceeds.

// SubmitItem is one protocol request of a v2 submission.
type SubmitItem struct {
	Scheme string `json:"scheme"`
	// KeyID names the key the operation runs under; empty selects the
	// scheme's default key.
	KeyID   string `json:"key_id,omitempty"`
	Op      string `json:"op"` // "sign" | "decrypt" | "coin" | "keygen"
	Payload []byte `json:"payload"`
	// Session distinguishes repeated requests over the same payload.
	Session string `json:"session,omitempty"`
	// Epoch pins the request to one key epoch: the instance runs iff
	// the key is at exactly this epoch, and fails with key_epoch
	// otherwise. Zero (the default) selects the node's current epoch.
	Epoch int `json:"epoch,omitempty"`
	// TimeoutMS is the per-request deadline: once elapsed, result
	// queries for this instance report CodeTimeout instead of blocking.
	// Zero means no deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Item converts a typed request into its wire form.
func Item(req protocols.Request) SubmitItem {
	return SubmitItem{
		Scheme:  string(req.Scheme),
		KeyID:   req.KeyID,
		Op:      req.Op.String(),
		Payload: req.Payload,
		Session: req.Session,
		Epoch:   req.Epoch,
	}
}

// Request converts the wire form back into a typed request.
func (it SubmitItem) Request() (protocols.Request, error) {
	op, err := protocols.ParseOperation(it.Op)
	if err != nil {
		return protocols.Request{}, Errf(CodeOpUnknown, "%v", err)
	}
	req := protocols.Request{
		Scheme:  schemes.ID(it.Scheme),
		KeyID:   it.KeyID,
		Op:      op,
		Payload: it.Payload,
		Session: it.Session,
		Epoch:   it.Epoch,
	}
	return req, nil
}

// SubmitBatchRequest is the body of POST /v2/protocol/submit: 1..N
// requests decoded and dispatched in one round-trip.
type SubmitBatchRequest struct {
	Requests []SubmitItem `json:"requests"`
}

// SubmitEntry is the per-item outcome of a batch submission.
type SubmitEntry struct {
	// InstanceID is the handle of the (new or joined) instance; empty
	// when Error is set.
	InstanceID string `json:"instance_id,omitempty"`
	// Duplicate reports that the request joined an instance that
	// already existed (idempotent re-submission).
	Duplicate bool `json:"duplicate,omitempty"`
	// Error classifies a rejected item; the other items of the batch
	// are unaffected.
	Error *Error `json:"error,omitempty"`
}

// SubmitBatchResponse answers a batch submission in request order. The
// HTTP status is 200 when every accepted item joined an existing
// instance and 202 when at least one new instance was started.
type SubmitBatchResponse struct {
	Results []SubmitEntry `json:"results"`
}

// ResultEntry is one instance's state in a results query or stream.
type ResultEntry struct {
	InstanceID string `json:"instance_id"`
	// Done reports whether the instance finished (successfully or not).
	// A long-poll that hits its window returns pending entries with
	// Done=false and no Error; callers re-poll.
	Done  bool   `json:"done"`
	Value []byte `json:"value,omitempty"`
	// Error is set when the instance failed or its per-request deadline
	// expired (CodeTimeout).
	Error *Error `json:"error,omitempty"`
	// LatencyMS is the server-side processing time of a finished
	// instance.
	LatencyMS int64 `json:"latency_ms,omitempty"`
}

// Result converts the wire entry into the typed result.
func (re ResultEntry) Result() Result {
	res := Result{InstanceID: re.InstanceID, Value: re.Value}
	if re.Error != nil {
		res.Err = re.Error
	}
	res.ServerLatency = msToDuration(re.LatencyMS)
	return res
}

// ResultsResponse answers a non-streaming results query.
type ResultsResponse struct {
	Results []ResultEntry `json:"results"`
}

// EncryptRequest is the scheme-API encryption request.
type EncryptRequest struct {
	Scheme string `json:"scheme"`
	// KeyID names the public key to encrypt under; empty selects the
	// scheme's default key.
	KeyID   string `json:"key_id,omitempty"`
	Message []byte `json:"message"`
	Label   []byte `json:"label,omitempty"`
}

// EncryptResponse carries the marshaled ciphertext.
type EncryptResponse struct {
	Ciphertext []byte `json:"ciphertext"`
}

// KeysResponse answers GET /v2/keys with the node's keychain.
type KeysResponse struct {
	Keys []KeyInfo `json:"keys"`
}

// KeyResponse answers GET /v2/keys/{scheme}/{id} with one named key's
// description — epoch, committee membership, and public material —
// without transferring the whole keychain. An unknown scheme answers
// 404 scheme_unknown, an unknown key 404 key_unknown.
type KeyResponse struct {
	Key KeyInfo `json:"key"`
}

// GenerateKeyRequest is the body of POST /v2/keys: start a distributed
// key generation for the scheme. KeyID and Group are optional (random
// ID, edwards25519).
type GenerateKeyRequest struct {
	Scheme string `json:"scheme"`
	KeyID  string `json:"key_id,omitempty"`
	Group  string `json:"group,omitempty"`
}

// GenerateKeyResponse answers with the keygen instance handle and the
// assigned key ID; the instance's result (via /v2/protocol/results)
// carries the same ID once the key is installed on the answering node.
type GenerateKeyResponse struct {
	InstanceID string `json:"instance_id"`
	KeyID      string `json:"key_id"`
}

// ReshareKeyRequest is the body of POST /v2/keys/{id}/reshare: start a
// live resharing of the named key. NewT and Members are optional —
// zero keeps the current threshold, empty keeps the current committee
// (a proactive refresh).
type ReshareKeyRequest struct {
	Scheme  string `json:"scheme"`
	NewT    int    `json:"new_t,omitempty"`
	Members []int  `json:"members,omitempty"`
}

// ReshareKeyResponse answers with the reshare instance handle, the key
// being reshared, and the epoch the key will be at once the instance
// finishes; the instance's result (via /v2/protocol/results) carries
// that epoch in decimal once the new shares are installed on the
// answering node.
type ReshareKeyResponse struct {
	InstanceID string `json:"instance_id"`
	KeyID      string `json:"key_id"`
	Epoch      int    `json:"epoch"`
}

// InfoResponse describes the node, its schemes, its keychain, and its
// engine stats.
type InfoResponse struct {
	APIVersion int          `json:"api_version"`
	NodeIndex  int          `json:"node_index"`
	N          int          `json:"n"`
	T          int          `json:"t"`
	Schemes    []string     `json:"schemes"`
	Keys       []KeyInfo    `json:"keys,omitempty"`
	Stats      *EngineStats `json:"stats,omitempty"`
	// Committees is the per-committee block of a router endpoint; absent
	// on single-committee deployments.
	Committees []CommitteeInfo `json:"committees,omitempty"`
}

// Info converts the wire form into the typed info.
func (ir InfoResponse) Info() Info {
	ids := make([]schemes.ID, len(ir.Schemes))
	for i, s := range ir.Schemes {
		ids[i] = schemes.ID(s)
	}
	return Info{NodeIndex: ir.NodeIndex, N: ir.N, T: ir.T, Schemes: ids, Keys: ir.Keys,
		Stats: ir.Stats, Committees: ir.Committees}
}

// ErrorResponse is the body of every non-2xx v2 response.
type ErrorResponse struct {
	Error *Error `json:"error"`
}
