package api

import (
	"errors"
	"fmt"
	"net/http"
)

// Code is a machine-readable error classification shared by every v2
// endpoint and by both Service implementations. Clients branch on the
// code, never on error strings.
type Code string

// Error codes of the v2 API.
const (
	// CodeBadRequest flags a request the server could not parse
	// (malformed JSON, missing fields, empty batch).
	CodeBadRequest Code = "bad_request"
	// CodeSchemeUnknown flags a scheme identifier outside Table 1.
	CodeSchemeUnknown Code = "scheme_unknown"
	// CodeOpUnknown flags an operation other than sign|decrypt|coin.
	CodeOpUnknown Code = "op_unknown"
	// CodeSchemeNoKeys flags a scheme the node holds no key material
	// for (keys were not dealt for it).
	CodeSchemeNoKeys Code = "scheme_no_keys"
	// CodeSchemeNotCipher flags an encryption request against a
	// signature or coin scheme.
	CodeSchemeNotCipher Code = "scheme_not_cipher"
	// CodeKeyUnknown flags a key ID the node's keystore does not hold
	// for the requested scheme. Transported as HTTP 404.
	CodeKeyUnknown Code = "key_unknown"
	// CodeKeyExists flags a key generation naming a (scheme, key ID)
	// pair that is already installed. Transported as HTTP 409.
	CodeKeyExists Code = "key_exists"
	// CodeKeyEpoch flags a request pinned to a key epoch the answering
	// node is not at: a share from a superseded epoch can never enter a
	// quorum of the current one. Re-submitting unpinned (epoch 0) uses
	// the node's current epoch. Transported as HTTP 409.
	CodeKeyEpoch Code = "key_epoch"
	// CodeKeyNoShare flags a threshold operation under a key the node
	// knows only publicly — after a resharing moved the committee away
	// from it, the node verifies and serves results but holds no share.
	// Transported as HTTP 409.
	CodeKeyNoShare Code = "key_no_share"
	// CodeDuplicateInstance marks a submission that joined an existing
	// protocol instance. v2 submissions are idempotent, so this code
	// appears as metadata (HTTP 200 + existing handle), never as a
	// failure.
	CodeDuplicateInstance Code = "duplicate_instance"
	// CodePayloadTooLarge flags a payload above MaxPayload.
	CodePayloadTooLarge Code = "payload_too_large"
	// CodeTimeout flags a per-request deadline or wait deadline that
	// expired before the instance finished.
	CodeTimeout Code = "timeout"
	// CodeOverloaded flags a node whose engine queue is saturated: the
	// request was not admitted and had no effect. Transported as HTTP
	// 429; the client SDK retries these with exponential backoff.
	CodeOverloaded Code = "overloaded"
	// CodeExpired flags an instance whose result passed the node's
	// retention window and was evicted. Re-submitting the request
	// starts a fresh instance.
	CodeExpired Code = "expired"
	// CodeNotFound flags an unknown instance or route.
	CodeNotFound Code = "not_found"
	// CodeUnavailable flags a node that is shutting down or otherwise
	// unable to serve (overload has its own CodeOverloaded).
	CodeUnavailable Code = "unavailable"
	// CodeInternal flags any other server-side failure.
	CodeInternal Code = "internal"
)

// Error is the structured error model of the v2 API. It is the JSON
// body of every non-2xx response ({"error":{"code":...,"message":...}})
// and the error type returned by the client SDK.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errf builds a structured error.
func Errf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the machine-readable code from any error; errors that
// are not (or do not wrap) an *Error report CodeInternal, and nil
// reports the empty code.
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeInternal
}

// HTTPStatus maps an error code to its transport status.
func HTTPStatus(code Code) int {
	switch code {
	case CodeBadRequest, CodeSchemeUnknown, CodeOpUnknown, CodeSchemeNotCipher:
		return http.StatusBadRequest
	case CodeSchemeNoKeys, CodeKeyUnknown, CodeNotFound:
		return http.StatusNotFound
	case CodeKeyExists, CodeKeyEpoch, CodeKeyNoShare:
		return http.StatusConflict
	case CodePayloadTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeExpired:
		return http.StatusGone
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
