package api

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

func TestCodeOf(t *testing.T) {
	if got := CodeOf(nil); got != "" {
		t.Fatalf("nil error: %q", got)
	}
	if got := CodeOf(Errf(CodeTimeout, "late")); got != CodeTimeout {
		t.Fatalf("direct: %q", got)
	}
	wrapped := fmt.Errorf("outer: %w", Errf(CodeSchemeUnknown, "nope"))
	if got := CodeOf(wrapped); got != CodeSchemeUnknown {
		t.Fatalf("wrapped: %q", got)
	}
	if got := CodeOf(errors.New("plain")); got != CodeInternal {
		t.Fatalf("plain: %q", got)
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := map[Code]int{
		CodeBadRequest:      http.StatusBadRequest,
		CodeSchemeUnknown:   http.StatusBadRequest,
		CodeOpUnknown:       http.StatusBadRequest,
		CodeSchemeNotCipher: http.StatusBadRequest,
		CodeSchemeNoKeys:    http.StatusNotFound,
		CodeNotFound:        http.StatusNotFound,
		CodePayloadTooLarge: http.StatusRequestEntityTooLarge,
		CodeTimeout:         http.StatusGatewayTimeout,
		CodeUnavailable:     http.StatusServiceUnavailable,
		CodeInternal:        http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := HTTPStatus(code); got != want {
			t.Errorf("%s: got %d want %d", code, got, want)
		}
	}
}

func TestValidateRequest(t *testing.T) {
	ok := protocols.Request{Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: []byte("m")}
	if e := ValidateRequest(ok); e != nil {
		t.Fatalf("valid request rejected: %v", e)
	}
	if e := ValidateRequest(protocols.Request{Scheme: "NOPE", Op: protocols.OpSign}); e == nil || e.Code != CodeSchemeUnknown {
		t.Fatalf("unknown scheme: %v", e)
	}
	big := protocols.Request{Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: make([]byte, protocols.MaxPayload+1)}
	if e := ValidateRequest(big); e == nil || e.Code != CodePayloadTooLarge {
		t.Fatalf("oversized payload: %v", e)
	}
	bad := protocols.Request{Scheme: schemes.BLS04, Op: protocols.Operation(42), Payload: []byte("m")}
	if e := ValidateRequest(bad); e == nil || e.Code != CodeBadRequest {
		t.Fatalf("bad op: %v", e)
	}
}

func TestItemRoundTrip(t *testing.T) {
	req := protocols.Request{
		Scheme: schemes.SG02, Op: protocols.OpDecrypt,
		Payload: []byte("ct"), Session: "s-1",
	}
	it := Item(req)
	back, err := it.Request()
	if err != nil {
		t.Fatal(err)
	}
	if back.InstanceID() != req.InstanceID() {
		t.Fatal("wire round-trip changed the instance identity")
	}
	it.Op = "frobnicate"
	if _, err := it.Request(); CodeOf(err) != CodeOpUnknown {
		t.Fatalf("bad op: %v", err)
	}
}
