package api

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"thetacrypt/internal/protocols"
	"thetacrypt/internal/schemes"
)

func TestCodeOf(t *testing.T) {
	if got := CodeOf(nil); got != "" {
		t.Fatalf("nil error: %q", got)
	}
	if got := CodeOf(Errf(CodeTimeout, "late")); got != CodeTimeout {
		t.Fatalf("direct: %q", got)
	}
	wrapped := fmt.Errorf("outer: %w", Errf(CodeSchemeUnknown, "nope"))
	if got := CodeOf(wrapped); got != CodeSchemeUnknown {
		t.Fatalf("wrapped: %q", got)
	}
	if got := CodeOf(errors.New("plain")); got != CodeInternal {
		t.Fatalf("plain: %q", got)
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := map[Code]int{
		CodeBadRequest:      http.StatusBadRequest,
		CodeSchemeUnknown:   http.StatusBadRequest,
		CodeOpUnknown:       http.StatusBadRequest,
		CodeSchemeNotCipher: http.StatusBadRequest,
		CodeSchemeNoKeys:    http.StatusNotFound,
		CodeKeyUnknown:      http.StatusNotFound,
		CodeKeyExists:       http.StatusConflict,
		CodeNotFound:        http.StatusNotFound,
		CodePayloadTooLarge: http.StatusRequestEntityTooLarge,
		CodeTimeout:         http.StatusGatewayTimeout,
		CodeUnavailable:     http.StatusServiceUnavailable,
		CodeInternal:        http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := HTTPStatus(code); got != want {
			t.Errorf("%s: got %d want %d", code, got, want)
		}
	}
}

func TestValidateRequest(t *testing.T) {
	ok := protocols.Request{Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: []byte("m")}
	if e := ValidateRequest(ok); e != nil {
		t.Fatalf("valid request rejected: %v", e)
	}
	if e := ValidateRequest(protocols.Request{Scheme: "NOPE", Op: protocols.OpSign}); e == nil || e.Code != CodeSchemeUnknown {
		t.Fatalf("unknown scheme: %v", e)
	}
	big := protocols.Request{Scheme: schemes.BLS04, Op: protocols.OpSign, Payload: make([]byte, protocols.MaxPayload+1)}
	if e := ValidateRequest(big); e == nil || e.Code != CodePayloadTooLarge {
		t.Fatalf("oversized payload: %v", e)
	}
	bad := protocols.Request{Scheme: schemes.BLS04, Op: protocols.Operation(42), Payload: []byte("m")}
	if e := ValidateRequest(bad); e == nil || e.Code != CodeBadRequest {
		t.Fatalf("bad op: %v", e)
	}
	// Only the scheme-registry lookup may classify as scheme_unknown:
	// new validation failures (bad key IDs, unsupported keygen targets)
	// fall to bad_request instead of masquerading as an unknown scheme.
	badKey := protocols.Request{Scheme: schemes.BLS04, KeyID: "not a key!", Op: protocols.OpSign, Payload: []byte("m")}
	if e := ValidateRequest(badKey); e == nil || e.Code != CodeBadRequest {
		t.Fatalf("bad key id: %v", e)
	}
	rsaGen := protocols.Request{Scheme: schemes.SH00, KeyID: "k1", Op: protocols.OpKeyGen}
	if e := ValidateRequest(rsaGen); e == nil || e.Code != CodeBadRequest {
		t.Fatalf("deal-only keygen: %v", e)
	}
	if e := ValidateRequest(protocols.Request{Scheme: schemes.KG20, KeyID: "k1", Op: protocols.OpKeyGen}); e != nil {
		t.Fatalf("valid keygen rejected: %v", e)
	}
}

func TestKeygenRequestSeam(t *testing.T) {
	req, e := KeygenRequest(schemes.CKS05, GenerateKeyOptions{})
	if e != nil {
		t.Fatal(e)
	}
	if req.Op != protocols.OpKeyGen || req.KeyID == "" {
		t.Fatalf("auto-named keygen request wrong: %+v", req)
	}
	req2, e := KeygenRequest(schemes.CKS05, GenerateKeyOptions{KeyID: "named", Group: "p256"})
	if e != nil {
		t.Fatal(e)
	}
	if req2.KeyID != "named" || string(req2.Payload) != "p256" {
		t.Fatalf("named keygen request wrong: %+v", req2)
	}
	if _, e := KeygenRequest(schemes.BLS04, GenerateKeyOptions{}); e == nil || e.Code != CodeBadRequest {
		t.Fatalf("pairing keygen: %v", e)
	}
	if _, e := KeygenRequest(schemes.KG20, GenerateKeyOptions{Group: "nope"}); e == nil || e.Code != CodeBadRequest {
		t.Fatalf("unknown group: %v", e)
	}
}

func TestItemRoundTrip(t *testing.T) {
	req := protocols.Request{
		Scheme: schemes.SG02, Op: protocols.OpDecrypt,
		Payload: []byte("ct"), Session: "s-1",
	}
	it := Item(req)
	back, err := it.Request()
	if err != nil {
		t.Fatal(err)
	}
	if back.InstanceID() != req.InstanceID() {
		t.Fatal("wire round-trip changed the instance identity")
	}
	it.Op = "frobnicate"
	if _, err := it.Request(); CodeOf(err) != CodeOpUnknown {
		t.Fatalf("bad op: %v", err)
	}
}
